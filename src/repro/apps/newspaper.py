"""The paper's availability-first example.

Section 2.3: "to ensure user satisfaction, availability can be more
important than security for services such as on-line magazines and
newspapers" — the motivating case for the Figure 4 default-allow rule,
"certain Internet-based information or entertainment services where
customer satisfaction is paramount and potentially unauthorized access
results only in minor revenue loss."

The service publishes daily editions; deployments pair it with
``AccessPolicy.availability_first`` so subscribers keep reading through
partitions, at the cost of occasional free reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.wrapper import Application

__all__ = ["OnlineNewspaper", "Article"]


@dataclass(frozen=True)
class Article:
    """One article in an edition."""

    edition: int
    section: str
    headline: str
    body: str


class OnlineNewspaper(Application):
    """Serves articles from published editions."""

    name = "newspaper"

    #: Sections present in every edition.
    SECTIONS = ("front", "world", "business", "sports")

    def __init__(self):
        self._editions: Dict[int, Dict[str, Article]] = {}
        self.reads_served = 0
        self.publish_edition()  # edition 1 exists from the start

    @property
    def latest_edition(self) -> int:
        return max(self._editions) if self._editions else 0

    def publish_edition(self) -> int:
        """Produce the next edition (deterministic filler content)."""
        number = self.latest_edition + 1
        self._editions[number] = {
            section: Article(
                edition=number,
                section=section,
                headline=f"Edition {number}: {section} news",
                body=f"All the {section} developments as of edition {number}.",
            )
            for section in self.SECTIONS
        }
        return number

    def handle_request(self, user: str, payload: Any) -> Optional[Article]:
        """Payload: a section name, or (edition, section)."""
        if isinstance(payload, tuple):
            edition, section = payload
        else:
            edition, section = self.latest_edition, payload
        articles = self._editions.get(edition)
        if articles is None:
            return None
        article = articles.get(section)
        if article is not None:
            self.reads_served += 1
        return article
