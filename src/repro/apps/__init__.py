"""The applications the paper uses to motivate its policy knobs.

All three implement :class:`repro.core.Application` and contain zero
access-control logic — the Figure 1 wrapper supplies it.
"""

from .infoservice import InfoCommand, InfoResult, OrgInfoService
from .newspaper import Article, OnlineNewspaper
from .stockquote import Quote, StockQuoteService

__all__ = [
    "Article",
    "InfoCommand",
    "InfoResult",
    "OnlineNewspaper",
    "OrgInfoService",
    "Quote",
    "StockQuoteService",
]
