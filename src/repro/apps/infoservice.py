"""The paper's second motivating example.

Section 2.1: "A more complicated example would be a distributed
information service that maintains data for an organization.  In this
case, some user identifiers could have been compromised or users
terminated, so it is important to be able to prevent those users from
accessing or changing information."

A small key-value document store with read/write/list/delete commands.
Security-first deployments wrap it with a strict policy (high check
quorum, short ``Te``, no default-allow), so a compromised identity is
cut off within ``Te`` of its revocation — the scenario the
``revocation`` experiment measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.wrapper import Application

__all__ = ["OrgInfoService", "InfoCommand", "InfoResult"]


@dataclass(frozen=True)
class InfoCommand:
    """One request to the information service."""

    op: str  # "read" | "write" | "delete" | "list"
    key: Optional[str] = None
    value: Any = None


@dataclass(frozen=True)
class InfoResult:
    """The service's reply."""

    ok: bool
    value: Any = None
    error: str = ""


class OrgInfoService(Application):
    """Key-value document store for organisational data.

    Keeps a full audit log of (user, op, key) — useful after a
    compromise to see what a revoked identity touched before the
    revocation took effect.
    """

    name = "org-info"

    def __init__(self):
        self._store: Dict[str, Any] = {}
        self.audit_log: List[Tuple[str, str, Optional[str]]] = []

    def handle_request(self, user: str, payload: Any) -> InfoResult:
        if not isinstance(payload, InfoCommand):
            return InfoResult(ok=False, error="payload must be an InfoCommand")
        command = payload
        self.audit_log.append((user, command.op, command.key))
        if command.op == "read":
            if command.key in self._store:
                return InfoResult(ok=True, value=self._store[command.key])
            return InfoResult(ok=False, error=f"no such key: {command.key}")
        if command.op == "write":
            if command.key is None:
                return InfoResult(ok=False, error="write requires a key")
            self._store[command.key] = command.value
            return InfoResult(ok=True, value=command.value)
        if command.op == "delete":
            if command.key in self._store:
                del self._store[command.key]
                return InfoResult(ok=True)
            return InfoResult(ok=False, error=f"no such key: {command.key}")
        if command.op == "list":
            return InfoResult(ok=True, value=sorted(self._store))
        return InfoResult(ok=False, error=f"unknown op: {command.op}")

    def accesses_by(self, user: str) -> List[Tuple[str, str, Optional[str]]]:
        """Audit trail for one user."""
        return [record for record in self.audit_log if record[0] == user]
