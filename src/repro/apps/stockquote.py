"""The paper's first motivating example.

Section 2.1: "A simple example of the access control problem would be a
service that provides stock quotes, but only to those users who have
paid for the service."

The service itself knows nothing about access control — the wrapper
guarantees only paying subscribers reach :meth:`handle_request`.
Prices follow a deterministic per-ticker random walk seeded by the
ticker name, so simulations are reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict

from ..core.wrapper import Application

__all__ = ["StockQuoteService", "Quote"]


@dataclass(frozen=True)
class Quote:
    """One stock quote."""

    ticker: str
    price: float
    serial: int  # per-ticker request counter


class StockQuoteService(Application):
    """Serves quotes for any ticker symbol to authorized users."""

    name = "stock-quotes"

    def __init__(self, base_price: float = 100.0, volatility: float = 0.5):
        if base_price <= 0 or volatility < 0:
            raise ValueError("base_price must be positive, volatility non-negative")
        self.base_price = base_price
        self.volatility = volatility
        self._prices: Dict[str, float] = {}
        self._serials: Dict[str, int] = {}
        self.requests_served = 0

    def _step(self, ticker: str, serial: int) -> float:
        """Deterministic pseudo-random walk step in [-1, 1]."""
        digest = hashlib.sha256(f"{ticker}:{serial}".encode()).digest()
        unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
        return 2.0 * unit - 1.0

    def handle_request(self, user: str, payload: Any) -> Quote:
        """Payload: a ticker symbol string."""
        if not isinstance(payload, str) or not payload:
            raise ValueError(f"expected a ticker symbol, got {payload!r}")
        ticker = payload.upper()
        serial = self._serials.get(ticker, 0) + 1
        self._serials[ticker] = serial
        price = self._prices.get(ticker, self.base_price)
        price = max(0.01, price + self.volatility * self._step(ticker, serial))
        self._prices[ticker] = price
        self.requests_served += 1
        return Quote(ticker=ticker, price=round(price, 2), serial=serial)
