#!/usr/bin/env python3
"""Availability-first vs security-first during a partition storm.

Section 2.3: "to ensure user satisfaction, availability can be more
important than security for services such as on-line magazines and
newspapers", while "if the application provides confidential
information ... the system must be able to deny access to users whose
identity has been compromised."

Two deployments of the same newspaper, same WAN, same partition storm:

* ``availability_first`` — C=1, R=3 with the Figure 4 default-allow;
* ``security_first``     — C=M, unbounded retries, deny on doubt.

The subscriber keeps reading through the storm on the first; on the
second, reads stall until the partition heals.

Run:  python examples/newspaper_availability.py
"""

from repro.apps import OnlineNewspaper
from repro.core import AccessPolicy, Right
from repro.core.policy import ExhaustedAction
from repro.core.system import AccessControlSystem
from repro.sim import ScriptedConnectivity


def run_storm(policy: AccessPolicy, label: str) -> None:
    connectivity = ScriptedConnectivity()
    system = AccessControlSystem(
        n_managers=3,
        n_hosts=1,
        applications=("newspaper",),
        policy=policy,
        connectivity=connectivity,
        seed=11,
    )
    host = system.hosts[0]
    paper = OnlineNewspaper()
    host.deploy(paper)
    system.seed_grant("newspaper", "reader", Right.USE)

    # Use a tiny Te so the cache expires during the storm and the host
    # is forced to re-verify while partitioned.
    outcomes = []

    def reader():
        while system.env.now < 120.0:
            decision = yield host.request_access("newspaper", "reader")
            if decision.allowed:
                article = paper.handle_request("reader", "front")
                outcomes.append((system.env.now, True, article.headline))
            else:
                outcomes.append((system.env.now, False, decision.reason))
            yield system.env.timeout(4.0)

    system.env.process(reader(), name="reader")

    def storm():
        yield system.env.timeout(30.0)
        connectivity.isolate(host.address, system.manager_addrs)
        yield system.env.timeout(60.0)
        connectivity.reconnect(host.address, system.manager_addrs)

    system.env.process(storm(), name="storm")
    system.run(until=130.0)

    during = [ok for (t, ok, _d) in outcomes if 32.0 <= t <= 88.0]
    after = [ok for (t, ok, _d) in outcomes if t > 92.0]
    print(f"{label}:")
    print(f"  reads during the 60s partition: "
          f"{sum(during)}/{len(during)} succeeded")
    print(f"  reads after it healed:          {sum(after)}/{len(after)} succeeded")
    denial_reasons = {d for (_t, ok, d) in outcomes if not ok}
    if denial_reasons:
        print(f"  denial reasons seen: {sorted(denial_reasons)}")
    print()


def main() -> None:
    # Short Te forces re-verification mid-storm in both configurations.
    availability_first = AccessPolicy.availability_first(
        n_managers=3, expiry_bound=20.0, attempts=2,
        query_timeout=1.0, retry_backoff=0.5,
    )
    security_first = AccessPolicy.security_first(
        n_managers=3, expiry_bound=20.0,
        max_attempts=2,  # bounded so the run terminates; deny on failure
        exhausted_action=ExhaustedAction.DENY,
        query_timeout=1.0, retry_backoff=0.5,
    )
    print("same newspaper, same 60-second partition, two policies\n")
    run_storm(availability_first, "availability-first (C=1, default-allow)")
    run_storm(security_first, "security-first (C=M, deny on doubt)")
    print("Figure 4's rule keeps subscribers reading; the strict policy "
          "trades exactly that away for certainty.")


if __name__ == "__main__":
    main()
