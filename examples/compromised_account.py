#!/usr/bin/env python3
"""Cutting off a compromised identity within Te.

Section 2.1's second example: "a distributed information service that
maintains data for an organization.  In this case, some user
identifiers could have been compromised or users terminated, so it is
important to be able to prevent those users from accessing or changing
information."

The adversary holds dave's real key, so authentication *succeeds* —
only revocation can stop them.  The script shows the timeline: the
compromise, writes by the attacker, the revocation, and the hard
cut-off within ``Te`` even on a host the revoke message cannot reach,
then uses the audit log to scope the damage.

Run:  python examples/compromised_account.py
"""

from repro.apps import InfoCommand, OrgInfoService
from repro.auth import Authenticator, Principal
from repro.core import AccessPolicy, Right, UserClient
from repro.core.system import AccessControlSystem
from repro.sim import ScriptedConnectivity


def main() -> None:
    # Confidential data: short Te, majority quorum, never default-allow.
    policy = AccessPolicy.security_first(
        n_managers=3, expiry_bound=30.0, max_attempts=2, query_timeout=1.0,
    )
    connectivity = ScriptedConnectivity()
    system = AccessControlSystem(
        n_managers=3,
        n_hosts=2,
        applications=("org-info",),
        policy=policy,
        connectivity=connectivity,
        seed=3,
    )
    authenticator = Authenticator()
    dave = Principal("dave")
    authenticator.register(dave)
    service = OrgInfoService()
    system.hosts[0].authenticator = authenticator
    system.hosts[0].deploy(service)
    mirror = OrgInfoService()
    system.hosts[1].authenticator = authenticator
    system.hosts[1].deploy(mirror)
    system.seed_grant("org-info", "dave", Right.USE)

    client = UserClient("c-dave", "dave", principal=dave)
    system.network.register(client)

    req = client.request("h0", "org-info",
                         InfoCommand(op="write", key="roadmap", value="v1"))
    system.run(until=5)
    print(f"t={system.env.now:5.1f}s  dave writes roadmap: ok={req.value.allowed}")

    # --- the key is stolen ----------------------------------------------------
    authenticator.mark_compromised("dave")
    print(f"t={system.env.now:5.1f}s  dave's key reported stolen "
          f"(signatures still verify!)")
    # The attacker reads from h1, which then gets partitioned from the
    # managers — the worst case for revocation.
    attacker = UserClient("c-attacker", "dave", principal=dave)
    system.network.register(attacker)
    req = attacker.request("h1", "org-info", InfoCommand(op="read", key="roadmap"))
    system.run(until=8)
    print(f"t={system.env.now:5.1f}s  attacker reads roadmap from h1: "
          f"ok={req.value.allowed} (h1 now caches dave's right)")
    connectivity.isolate("h1", system.manager_addrs)

    # --- revocation ------------------------------------------------------------
    revoke_at = system.env.now
    system.managers[0].revoke("org-info", "dave", Right.USE)
    print(f"t={revoke_at:5.1f}s  security team revokes dave "
          f"(Te={policy.expiry_bound:.0f}s, h1 unreachable)")

    last_allowed = None
    for _ in range(15):
        started = system.env.now
        req = attacker.request("h1", "org-info",
                               InfoCommand(op="write", key="roadmap",
                                           value="tampered"))
        # Leave room for the worst case: R query timeouts + backoffs.
        system.run(until=system.env.now + 6.0)
        if req.triggered and req.value.allowed:
            last_allowed = started + req.value.latency
    if last_allowed is None:
        print("          attacker never got through after the revocation")
    else:
        offset = last_allowed - revoke_at
        status = "OK" if offset < policy.expiry_bound else "VIOLATION"
        print(f"          attacker's last successful write on h1: "
              f"{offset:.1f}s after revocation (bound {policy.expiry_bound:.0f}s "
              f"-> {status})")

    req = attacker.request("h0", "org-info", InfoCommand(op="read", key="roadmap"))
    system.run(until=system.env.now + 5)
    print(f"t={system.env.now:5.1f}s  attacker on connected h0: "
          f"ok={req.value.allowed} ({req.value.reason})")

    print("\naudit trail for 'dave' on h1 (scoping the damage):")
    for user, op, key in mirror.accesses_by("dave"):
        print(f"  {op:6s} {key}")


if __name__ == "__main__":
    main()
