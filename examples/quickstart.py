#!/usr/bin/env python3
"""Quickstart: the paper's protocol in one small deployment.

Builds 5 managers + 3 application hosts on a simulated WAN, grants a
user the *use* right, exercises the cached check, revokes the right,
and shows the cache flush — then asks the analysis module which check
quorum the deployment should be running.

Run:  python examples/quickstart.py
"""

from repro import AccessControlSystem, AccessPolicy
from repro.analysis import best_check_quorum, quorum_curve
from repro.core import Right


def main() -> None:
    policy = AccessPolicy(
        check_quorum=3,     # C: managers that must concur on a check
        expiry_bound=120.0, # Te: revocation is global within 2 minutes
        clock_bound=1.05,   # b: host clocks at most 5% slow
    )
    system = AccessControlSystem(
        n_managers=5,
        n_hosts=3,
        applications=("stocks",),
        policy=policy,
        seed=42,
    )
    print(f"built {system}")
    print(f"cache lifetime handed to hosts: te = Te/b = "
          f"{policy.te_local:.1f}s (local clock)\n")

    # Grant alice the use right (pre-seeded, as if fully propagated).
    system.seed_grant("stocks", "alice", Right.USE)

    host = system.hosts[0]

    # First access: cache miss -> check quorum of 3 managers.
    check = host.request_access("stocks", "alice")
    system.run(until=10)
    decision = check.value
    print(f"alice, first access : allowed={decision.allowed} "
          f"via {decision.reason!r} in {decision.latency * 1000:.0f} ms")

    # Second access: served from ACL_cache(A) with zero delay.
    check = host.request_access("stocks", "alice")
    system.run(until=11)
    decision = check.value
    print(f"alice, second access: allowed={decision.allowed} "
          f"via {decision.reason!r} in {decision.latency * 1000:.0f} ms")

    # A stranger is denied by the same quorum.
    check = host.request_access("stocks", "mallory")
    system.run(until=15)
    print(f"mallory             : allowed={check.value.allowed} "
          f"({check.value.reason})")

    # Revoke alice.  The manager reaches its update quorum (M - C + 1)
    # and forwards Revoke(A, U) to every host caching her right.
    handle = system.managers[0].revoke("stocks", "alice", Right.USE)
    system.run(until=25)
    print(f"\nrevoke issued: quorum reached={handle.quorum.triggered}, "
          f"all managers updated={handle.complete.triggered}")

    check = host.request_access("stocks", "alice")
    system.run(until=30)
    print(f"alice, post-revoke  : allowed={check.value.allowed} "
          f"({check.value.reason})")

    # What C should this deployment use?  (Figure 5 / Table 1 analysis.)
    pi = 0.1
    print(f"\nanalysis at Pi={pi} for M=5:")
    for point in quorum_curve(5, pi):
        print(f"  C={point.c}: PA={point.availability:.5f} "
              f"PS={point.security:.5f}")
    best = best_check_quorum(5, pi)
    print(f"best balanced check quorum: C={best.c} "
          f"(min(PA,PS)={best.worst:.5f})")


if __name__ == "__main__":
    main()
