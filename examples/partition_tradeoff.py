#!/usr/bin/env python3
"""The check-quorum tradeoff, analytic and simulated side by side.

Sweeps the check quorum C for M = 10 managers at Pi = 0.1 and prints
the paper's closed-form PA(C)/PS(C) (Table 1) next to estimates from
running the real protocol over a sampled-partition network — a compact
version of the ``sim_table1`` experiment.

Run:  python examples/partition_tradeoff.py
"""

from repro.analysis import availability, best_check_quorum, security
from repro.experiments.validation import simulate_pa, simulate_ps
from repro.metrics import wilson_interval


def main() -> None:
    m, pi, trials = 10, 0.1, 300
    print(f"M={m} managers, Pi={pi}, {trials} protocol trials per cell\n")
    header = (f"{'C':>2}  {'PA analytic':>11}  {'PA simulated':>12}  "
              f"{'PS analytic':>11}  {'PS simulated':>12}")
    print(header)
    print("-" * len(header))
    for c in (1, 2, 4, 5, 6, 8, 10):
        pa_hits, pa_n = simulate_pa(m, c, pi, trials, seed=1)
        ps_hits, ps_n = simulate_ps(m, c, pi, trials, seed=1)
        pa_lo, pa_hi = wilson_interval(pa_hits, pa_n)
        ps_lo, ps_hi = wilson_interval(ps_hits, ps_n)
        print(
            f"{c:>2}  {availability(m, c, pi):>11.5f}  "
            f"{pa_hits / pa_n:>12.5f}  "
            f"{security(m, c, pi):>11.5f}  "
            f"{ps_hits / ps_n:>12.5f}"
        )
    best = best_check_quorum(m, pi)
    print(f"\nbalanced optimum: C={best.c} with min(PA,PS)={best.worst:.5f} — "
          "the 'relatively large range of values of C around M/2' the "
          "paper describes.")


if __name__ == "__main__":
    main()
