#!/usr/bin/env python3
"""Delegated administration: the *manage* right at work.

Section 2.1 defines two rights: *use* and *manage* — "the users that
have the ability to change the access rights associated with A form
the set Managers(A)."  This script runs a small org through a staffing
story: the root administrator delegates the manage right to a regional
admin, the regional admin onboards users from their own machine (signed
requests, quorum-confirmed), and when the regional admin departs, a
single revocation strips both their manage capability and — within Te —
their own access.

Run:  python examples/delegated_administration.py
"""

import random

from repro.auth import Authenticator, Principal
from repro.auth.keys import generate_keypair
from repro.core import AccessPolicy, AdminClient, Right
from repro.core.rights import AclEntry, Version
from repro.core.manager import AccessControlManager
from repro.core.host import AccessControlHost
from repro.sim import Environment, FixedLatency, LocalClock, Network, StableStore, Tracer


def main() -> None:
    env = Environment()
    tracer = Tracer(env)
    network = Network(env, latency=FixedLatency(0.05), tracer=tracer)
    policy = AccessPolicy(check_quorum=2, expiry_bound=60.0, query_timeout=1.0)

    authenticator = Authenticator()
    manager_addrs = ("m0", "m1", "m2")
    managers = []
    for addr in manager_addrs:
        manager = AccessControlManager(
            addr, policy, store=StableStore(addr),
            admin_authenticator=authenticator,
        )
        manager.manage("hr-portal", manager_addrs)
        network.register(manager)
        managers.append(manager)
    host = AccessControlHost(
        "h0", policy, managers={"hr-portal": manager_addrs},
        clock=LocalClock(env),
    )
    network.register(host)

    # Bootstrap: root holds the manage right (installed out of band).
    for manager in managers:
        manager.bootstrap(
            "hr-portal",
            [AclEntry("root", Right.MANAGE, True, Version(1, ""))],
        )

    def principal(name, seed):
        p = Principal(name, generate_keypair(bits=128, rng=random.Random(seed)))
        authenticator.register(p)
        return p

    root = AdminClient("c-root", "root", principal=principal("root", 1))
    regional = AdminClient("c-regional", "regional",
                           principal=principal("regional", 2))
    network.register(root)
    network.register(regional)

    def story():
        # 1. Root delegates.
        result = yield env.process(
            root.add("m0", "hr-portal", "regional", Right.MANAGE)
        )
        print(f"root delegates manage right to regional: "
              f"accepted={result.accepted} "
              f"(confirmed at update quorum, {result.latency:.2f}s)")

        # 2. Regional onboards staff from their own machine.
        for employee in ("ana", "ben", "cho"):
            result = yield env.process(
                regional.add("m1", "hr-portal", employee, Right.USE)
            )
            print(f"regional onboards {employee}: accepted={result.accepted}")

        # 3. An outsider tries the same and is refused.
        mallory = AdminClient("c-mallory", "mallory",
                              principal=principal("mallory", 3))
        network.register(mallory)
        result = yield env.process(
            mallory.add("m0", "hr-portal", "mallory", Right.USE)
        )
        print(f"mallory self-onboarding: accepted={result.accepted} "
              f"({result.reason})")

        # 4. Staff can use the portal.
        decision = yield host.request_access("hr-portal", "ana")
        print(f"ana uses the portal: allowed={decision.allowed} "
              f"(check quorum of {policy.check_quorum})")

        # 5. Regional departs: one revocation ends the delegation.
        result = yield env.process(
            root.revoke("m0", "hr-portal", "regional", Right.MANAGE)
        )
        print(f"root revokes regional's manage right: "
              f"accepted={result.accepted}")
        result = yield env.process(
            regional.add("m2", "hr-portal", "dan", Right.USE)
        )
        print(f"regional tries to onboard dan afterwards: "
              f"accepted={result.accepted} ({result.reason})")

        # 6. The staff regional onboarded keep their (independent) rights.
        decision = yield host.request_access("hr-portal", "ben")
        print(f"ben still uses the portal: allowed={decision.allowed}")

    env.process(story(), name="story")
    env.run(until=120.0)


if __name__ == "__main__":
    main()
