#!/usr/bin/env python3
"""The paper's stock-quote service, end to end with authentication.

Section 2.1's first example: "a service that provides stock quotes, but
only to those users who have paid for the service."  This script runs
the full message path — signed client requests, the access-control
wrapper, the cached quorum check — and then a subscription lapse
(revocation), showing that the ex-subscriber is cut off within Te even
though one host is partitioned when the revocation happens.

Run:  python examples/stock_quote_service.py
"""

from repro.apps import StockQuoteService
from repro.auth import Authenticator, Principal
from repro.core import AccessPolicy, Right, UserClient
from repro.core.system import AccessControlSystem
from repro.sim import ScriptedConnectivity


def main() -> None:
    policy = AccessPolicy(check_quorum=2, expiry_bound=60.0, max_attempts=3)
    connectivity = ScriptedConnectivity()
    system = AccessControlSystem(
        n_managers=3,
        n_hosts=2,
        applications=("stock-quotes",),
        policy=policy,
        connectivity=connectivity,
        seed=7,
    )

    # Authentication: every request must be signed by a registered key.
    authenticator = Authenticator()
    subscriber = Principal("carol")
    freeloader = Principal("eve")  # never registered
    authenticator.register(subscriber)
    services = []
    for host in system.hosts:
        host.authenticator = authenticator
        service = StockQuoteService()
        host.deploy(service)
        services.append(service)

    # carol has paid; the managers know.
    system.seed_grant("stock-quotes", "carol", Right.USE)

    carol = UserClient("c-carol", "carol", principal=subscriber)
    eve = UserClient("c-eve", "eve", principal=freeloader)
    system.network.register(carol)
    system.network.register(eve)

    # --- normal operation ---------------------------------------------------
    req = carol.request(system.hosts[0].address, "stock-quotes", "ACME")
    system.run(until=10)
    quote = req.value
    print(f"carol quote: allowed={quote.allowed} -> {quote.result} "
          f"({quote.latency * 1000:.0f} ms, via {quote.reason})")

    req = carol.request(system.hosts[0].address, "stock-quotes", "ACME")
    system.run(until=12)
    print(f"carol again: allowed={req.value.allowed} via {req.value.reason} "
          f"({req.value.latency * 1000:.0f} ms — cache)")

    req = eve.request(system.hosts[0].address, "stock-quotes", "ACME")
    system.run(until=15)
    print(f"eve (unregistered key): allowed={req.value.allowed} "
          f"({req.value.reason})")

    # --- subscription lapses while h1 is partitioned -------------------------
    # h1 verifies carol once, caching her right...
    req = carol.request("h1", "stock-quotes", "ACME")
    system.run(until=18)
    assert req.value.allowed
    # ...and is then cut off from every manager.
    connectivity.isolate("h1", system.manager_addrs)
    print("\n[h1 partitioned from all managers]")
    revoke_at = system.env.now
    system.managers[0].revoke("stock-quotes", "carol", Right.USE)
    print(f"carol's subscription revoked at t={revoke_at:.1f}s "
          f"(Te={policy.expiry_bound:.0f}s)")

    # h0 (connected) drops her instantly; h1 rides its cache until te.
    last_allowed = None
    for _ in range(20):
        started = system.env.now
        req = carol.request("h1", "stock-quotes", "ACME")
        # Leave room for the worst case: R query timeouts + backoffs.
        system.run(until=system.env.now + 8.0)
        if req.triggered and req.value.allowed:
            last_allowed = started + req.value.latency
        elif last_allowed is not None:
            break
    offset = (last_allowed - revoke_at) if last_allowed else 0.0
    print(f"h1 last served carol {offset:.1f}s after the revocation "
          f"(bound Te={policy.expiry_bound:.0f}s) -> "
          f"{'OK' if offset < policy.expiry_bound else 'VIOLATION'}")

    req = carol.request("h0", "stock-quotes", "ACME")
    system.run(until=system.env.now + 5.0)
    print(f"h0 (connected) serves carol: allowed={req.value.allowed} "
          f"({req.value.reason})")

    total = sum(s.requests_served for s in services)
    print(f"\nquotes served in total: {total}")


if __name__ == "__main__":
    main()
