#!/usr/bin/env python3
"""A mobile subscriber — the paper's footnote 1 in action.

"Although we focus here on wired networks, similar problems exist in
mobile computing systems, so our solutions could be applied in this
context as well."

A commuter's device hosts the newspaper's edge reader (the application
host) and drops off the network whenever the train enters a tunnel.
The script contrasts the subscriber's experience under a strict policy
and under Figure 4's default-allow rule, and then shows the flip side:
after the subscription is cancelled mid-tunnel, the strict policy cuts
reading off at the cache's Te bound while default-allow keeps serving.

Run:  python examples/mobile_subscriber.py
"""

from repro.apps import OnlineNewspaper
from repro.core import AccessPolicy, Right
from repro.core.policy import ExhaustedAction
from repro.core.system import AccessControlSystem
from repro.sim import DutyCycleModel, FixedLatency


def ride(policy: AccessPolicy, label: str, seed: int = 4) -> None:
    # The device is connected ~70% of the time (tunnels, dead zones).
    connectivity = DutyCycleModel(
        targets=("h0",), mean_connected=70.0, mean_disconnected=30.0
    )
    system = AccessControlSystem(
        n_managers=3,
        n_hosts=1,
        applications=("newspaper",),
        policy=policy,
        connectivity=connectivity,
        latency=FixedLatency(0.08),
        seed=seed,
    )
    device = system.hosts[0]
    paper = OnlineNewspaper()
    device.deploy(paper)
    system.seed_grant("newspaper", "commuter", Right.USE)

    reads = []
    post_cancel_reads = []
    cancel_at = 600.0

    def reader():
        while system.env.now < 1200.0:
            started = system.env.now
            decision = yield device.request_access("newspaper", "commuter")
            record = (started, decision.allowed)
            if started < cancel_at:
                reads.append(record)
            else:
                post_cancel_reads.append(record)
            yield system.env.timeout(10.0)

    def canceller():
        yield system.env.timeout(cancel_at)
        system.managers[0].revoke("newspaper", "commuter", Right.USE)

    system.env.process(reader(), name="reader")
    system.env.process(canceller(), name="canceller")
    system.run(until=1250.0)

    served = sum(ok for _t, ok in reads)
    print(f"{label}:")
    print(f"  while subscribed: {served}/{len(reads)} reads served "
          f"({served / len(reads):.0%}) despite ~30% dead zones")
    last_allowed = max(
        (t for t, ok in post_cancel_reads if ok), default=None
    )
    if last_allowed is None:
        print("  after cancelling: cut off immediately")
    else:
        print(f"  after cancelling: last read served "
              f"{last_allowed - cancel_at:.0f}s past the cancellation "
              f"(Te={policy.expiry_bound:.0f}s bound "
              f"{'holds' if last_allowed - cancel_at < policy.expiry_bound or policy.exhausted_action is ExhaustedAction.ALLOW else 'VIOLATED'})")
    print()


def main() -> None:
    print("a commuter reads the paper through tunnels; then cancels\n")
    strict = AccessPolicy(
        check_quorum=2, expiry_bound=120.0, max_attempts=2,
        exhausted_action=ExhaustedAction.DENY,
        query_timeout=1.0, retry_backoff=0.5,
    )
    lenient = AccessPolicy.availability_first(
        n_managers=3, expiry_bound=120.0, attempts=2,
        query_timeout=1.0, retry_backoff=0.5,
    )
    ride(strict, "strict policy (deny when unverifiable)")
    ride(lenient, "Figure 4 policy (default-allow after R failures)")
    print("the mobile tradeoff is the wired one, concentrated: every "
          "tunnel is a partition, so the policy knobs matter constantly.")


if __name__ == "__main__":
    main()
