# Convenience targets for the reproduction.

.PHONY: install test bench experiments examples all clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	repro-experiments

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script || exit 1; \
		echo; \
	done

all: test bench experiments

clean:
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
