# Convenience targets for the reproduction.

.PHONY: install test test-calendar test-slow lint fuzz bench bench-smoke bench-ab bench-baseline bench-compare bench-parallel net-smoke net-smoke-binary population-smoke sim-parallel mega profile experiments examples all clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	PYTHONPATH=src python -m pytest -x -q

# The same tier-1 suite with every Environment on the calendar queue;
# behaviour (golden traces included) must be identical to the heap run.
test-calendar:
	REPRO_SCHEDULER=calendar PYTHONPATH=src python -m pytest -x -q

test-slow:
	PYTHONPATH=src python -m pytest -q -m slow

lint:
	ruff check src/repro/core src/repro/protocols src/repro/sim src/repro/net src/repro/metrics src/repro/runtime src/repro/workloads
	mypy

fuzz:
	PYTHONPATH=src python -m repro fuzz --cells 50 --seed 7 --jobs 4

bench:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only

bench-smoke:
	PYTHONPATH=src python -m repro bench --quick

# Both sides of the scheduler matrix on the scheduler-sensitive cells.
bench-ab:
	PYTHONPATH=src python -m repro bench scheduler_churn batched_fanout --repeats 5 --no-artifact
	PYTHONPATH=src python -m repro bench scheduler_churn batched_fanout --repeats 5 --scheduler heap --no-artifact

bench-baseline:
	PYTHONPATH=src python -m repro bench --record --repeats 5 --no-artifact

bench-compare:
	PYTHONPATH=src python -m repro bench --repeats 5

# Boot a live cell, hit it with a closed-loop load burst, then run the
# sim<->socket differential suite (slow fuzz sample included).
net-smoke:
	rm -f /tmp/repro-cell.json
	PYTHONPATH=src python -m repro serve --role cell --managers 3 --hosts 2 \
		--secret smoke --port-file /tmp/repro-cell.json --run-for 120 & pid=$$!; \
	for i in $$(seq 1 50); do [ -f /tmp/repro-cell.json ] && break; sleep 0.2; done; \
	PYTHONPATH=src python -m repro load --port-file /tmp/repro-cell.json \
		--secret smoke --clients 4 --duration 5; status=$$?; \
	kill $$pid 2>/dev/null; rm -f /tmp/repro-cell.json; exit $$status
	PYTHONPATH=src python -m pytest -q tests/test_net -m ""

# The same closed loop on the binary fast path: cell and clients both
# prefer the interned-dictionary codec; the report's wire line shows
# the segments coalescing.
net-smoke-binary:
	rm -f /tmp/repro-cell.json
	PYTHONPATH=src python -m repro serve --role cell --managers 3 --hosts 2 \
		--codec binary --secret smoke --port-file /tmp/repro-cell.json \
		--run-for 120 & pid=$$!; \
	for i in $$(seq 1 50); do [ -f /tmp/repro-cell.json ] && break; sleep 0.2; done; \
	PYTHONPATH=src python -m repro load --port-file /tmp/repro-cell.json \
		--secret smoke --clients 4 --duration 5 --codec binary; status=$$?; \
	kill $$pid 2>/dev/null; rm -f /tmp/repro-cell.json; exit $$status

# The CI population gate at local speed: 10^5 principals, K=4 shards,
# invariants on, wall-clock budgeted.
population-smoke:
	PYTHONPATH=src python -m repro.experiments.cli mega --principals 100000 \
		--duration 120 --check-invariants --budget 240

# One mega run region-sharded across forked simulation workers
# (K=4 manager groups as 4 region processes; byte-identical to K=1).
sim-parallel:
	PYTHONPATH=src python -m repro.experiments.cli mega --principals 100000 \
		--duration 120 --sim-regions 4 --sim-jobs 4 --budget 600

# The parallel-simulation gate cell: K=1 flat vs K=4 forked, counted
# statistics asserted equal, null-message overhead in the meta.
bench-parallel:
	PYTHONPATH=src python -m repro bench cell_parallel_sim --repeats 3 --no-artifact

# The full mega soak: 10^6 principals (minutes of wall-clock; run on a
# quiet machine and watch peak RSS stay O(population)).
mega:
	PYTHONPATH=src python -m repro.experiments.cli mega --principals 1000000 \
		--duration 120 --check-invariants

# cProfile the message-heaviest bench cell; stats land in
# benchmarks/repro-bench.prof (readable with `python -m pstats`).
profile:
	PYTHONPATH=src python -m repro bench cell_quorum --quick --profile --no-artifact

experiments:
	PYTHONPATH=src python -m repro.experiments.cli

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script || exit 1; \
		echo; \
	done

all: test bench experiments

clean:
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
