"""Extension experiment: footnote 2 — lying managers.  The crash-only
combine falls to one liar; f+1 vouching restores security without
costing legitimate users."""

from repro.experiments import byzantine


def test_byzantine(benchmark, show):
    result = benchmark.pedantic(
        byzantine.run, kwargs=dict(trials=40, seed=0), rounds=1, iterations=1
    )
    show(result)
    rows = {row["configuration"]: row for row in result.as_dicts()}
    assert rows["crash-only combine, honest"]["fabricated grants accepted"] == 0.0
    assert rows["crash-only combine, 1 liar"]["fabricated grants accepted"] == 1.0
    assert rows["f=1 vouching, 1 liar"]["fabricated grants accepted"] == 0.0
    assert rows["f=1 vouching, 2 colluding liars"][
        "fabricated grants accepted"
    ] == 1.0
    assert rows["f=2 vouching, 2 colluding liars"][
        "fabricated grants accepted"
    ] == 0.0
    for row in result.as_dicts():
        assert row["legitimate grants accepted"] == 1.0
