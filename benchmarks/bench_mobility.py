"""Extension experiment: footnote 1's mobile clients — availability vs
disconnected fraction for strict, long-Te, and default-allow policies."""

from repro.experiments import mobility


def test_mobility(benchmark, show):
    result = benchmark.pedantic(
        mobility.run,
        kwargs=dict(fractions=(0.1, 0.3, 0.5), seed=0),
        rounds=1,
        iterations=1,
    )
    show(result)
    cells = {
        (row["policy"], row["disconnected fraction"]): row["availability"]
        for row in result.as_dicts()
    }
    # Strict availability degrades with the disconnected fraction...
    assert cells[("strict (Te=30)", 0.1)] > cells[("strict (Te=30)", 0.5)]
    assert cells[("strict (Te=30)", 0.5)] < 0.8
    # ...a long cache bridges most disconnections...
    for fraction in (0.1, 0.3, 0.5):
        assert (
            cells[("long cache (Te=300)", fraction)]
            >= cells[("strict (Te=30)", fraction)]
        )
    # ...and Figure 4's rule buys full availability.
    for fraction in (0.1, 0.3, 0.5):
        assert cells[("default-allow (Te=30)", fraction)] == 1.0
