"""Section 4.1 closing analysis: heterogeneous pairwise probabilities
with frequency weighting, and correlated (shared-link) failures vs the
independence assumption."""

from repro.experiments import heterogeneous


def test_heterogeneous_analysis(benchmark, show):
    result = benchmark.pedantic(
        heterogeneous.run,
        kwargs=dict(check_quorum=3, samples=20_000, seed=0),
        rounds=1,
        iterations=1,
    )
    show(result)
    rows = {
        (row["quantity"], row["site / C"], row["model"]): row["probability"]
        for row in result.as_dicts()
    }
    # The paper's warning: a flaky manager that issues most updates
    # drags system security down.
    uniform = rows[("security", "system", "uniform weights")]
    weighted = rows[("security", "system", "flaky issues 80%")]
    assert weighted < uniform - 0.2

    # Correlated failures beat the independent approximation at mid C.
    assert (
        rows[("availability", "C=4", "correlated (MC)")]
        < rows[("availability", "C=4", "independent approx")] - 0.05
    )
