#!/usr/bin/env python
"""Diff a fresh pytest-benchmark JSON run against a committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only \
        --benchmark-json=current.json
    python benchmarks/compare_bench.py \
        --baseline benchmarks/baseline.json --current current.json

Exits non-zero if any benchmark present in both files regressed by more
than ``--threshold`` (default 25%) on its median time.  Benchmarks that
exist on only one side are reported but never fail the run, so adding
or retiring a benchmark does not break CI.  Use ``--record`` to copy
the current run over the baseline after an intentional change.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from typing import Dict


def load_medians(path: str) -> Dict[str, float]:
    """Map benchmark name -> median seconds.

    Understands both pytest-benchmark ``--benchmark-json`` output and
    the ``repro-bench-v1`` documents written by ``repro bench`` (see
    ``repro.experiments.bench``), so either kind of run can be diffed
    against either kind of baseline.  repro-bench documents yield the
    best (minimum) sample — the noise-robust representative the CLI
    gate compares — while pytest-benchmark output carries medians.
    """
    with open(path) as handle:
        data = json.load(handle)
    schema = data.get("schema")
    if isinstance(schema, str) and schema.startswith("repro-bench"):
        return {
            name: entry.get("best", entry["median"])
            for name, entry in data["benchmarks"].items()
        }
    medians = {}
    for bench in data.get("benchmarks", []):
        medians[bench["name"]] = bench["stats"]["median"]
    return medians


def compare(
    baseline: Dict[str, float], current: Dict[str, float], threshold: float
) -> int:
    """Print the comparison table; return the number of regressions."""
    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))
    regressions = 0

    width = max((len(name) for name in shared), default=4)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}  verdict")
    for name in shared:
        base_s, curr_s = baseline[name], current[name]
        ratio = curr_s / base_s if base_s else float("inf")
        if ratio > 1.0 + threshold:
            verdict = f"REGRESSION (> {threshold:.0%})"
            regressions += 1
        elif ratio < 1.0:
            verdict = f"improved ({1.0 - ratio:.0%} faster)"
        else:
            verdict = "ok"
        print(f"{name.ljust(width)}  {base_s * 1e3:>10.3f}ms  "
              f"{curr_s * 1e3:>10.3f}ms  {ratio:>6.2f}x  {verdict}")
    for name in only_baseline:
        print(f"{name.ljust(width)}  (missing from current run — skipped)")
    for name in only_current:
        print(f"{name.ljust(width)}  (new benchmark — no baseline)")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmarks regress past a threshold "
        "versus a committed baseline."
    )
    parser.add_argument(
        "--baseline", default="benchmarks/baseline.json",
        help="committed baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--current", required=True,
        help="fresh --benchmark-json output to check",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed median slowdown as a fraction (default: %(default)s)",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="after comparing, overwrite the baseline with the current run",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    try:
        baseline = load_medians(args.baseline)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; record one with --record",
              file=sys.stderr)
        if args.record:
            shutil.copyfile(args.current, args.baseline)
            print(f"recorded {args.current} as {args.baseline}")
            return 0
        return 2
    current = load_medians(args.current)

    regressions = compare(baseline, current, args.threshold)
    if args.record:
        shutil.copyfile(args.current, args.baseline)
        print(f"\nrecorded {args.current} as {args.baseline}")
        return 0
    if regressions:
        print(f"\n{regressions} benchmark(s) regressed more than "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("\nno regressions past the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
