"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` regenerates one table or figure of the paper (see
DESIGN.md's experiment index): it prints the reproduced rows once per
session and times the generation under pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def show():
    """Print an experiment result once, set off from benchmark output."""

    def _show(result) -> None:
        print()
        print(result.render())
        print()

    return _show
