"""sim_table1: runs the real protocol over i.i.d. Bernoulli(Pi)
partitions and checks the analytic Table 1 values fall inside the
simulated Wilson intervals.  One timed round — the workload itself is
the benchmark."""

from repro.experiments import validation


def test_sim_table1(benchmark, show):
    result = benchmark.pedantic(
        validation.run,
        kwargs=dict(m=10, cs=(1, 3, 5, 7, 10), pis=(0.1, 0.2),
                    trials=300, seed=0),
        rounds=1,
        iterations=1,
    )
    show(result)
    eps = 1e-9
    for row in result.as_dicts():
        assert row["PA ci-low"] - eps <= row["PA analytic"] <= row["PA ci-high"] + eps, row
        assert row["PS ci-low"] - eps <= row["PS analytic"] <= row["PS ci-high"] + eps, row
