"""Extension ablation: weighted voting vs the paper's count quorums
when one manager is markedly less reachable (Section 4.1's
heterogeneity discussion carried one step further)."""

from repro.experiments import weighted


def test_weighted_quorums(benchmark, show):
    result = benchmark.pedantic(
        weighted.run,
        kwargs=dict(m=5, base_pi=0.1, flaky_pi=0.45),
        rounds=1,
        iterations=1,
    )
    show(result)
    rows = {row["scheme"]: row for row in result.as_dicts()}
    unit = rows["unit weights (paper)"]["min(PA, PS)"]
    optimal = rows["optimal weights <= 3"]["min(PA, PS)"]
    removed = rows["remove flaky (M-1)"]["min(PA, PS)"]
    # Weighted voting at least matches counts (counts are in its space)...
    assert optimal >= unit - 1e-12
    # ...and actually improves here thanks to finer threshold splits.
    assert optimal > unit + 1e-4
    # Dropping the flaky manager outright is worse than keeping it.
    assert removed < unit
