"""The paper's core design choice: manager-held ACLs *with caching*.
Quantifies the 8x query reduction and latency collapse the cache buys
on a flash-crowd workload."""

from repro.experiments import caching


def test_caching_effectiveness(benchmark, show):
    result = benchmark.pedantic(
        caching.run, kwargs=dict(seed=0), rounds=1, iterations=1
    )
    show(result)
    rows = {row["configuration"]: row for row in result.as_dicts()}
    off = rows["caching off (te ~ 0)"]
    on = rows["caching on (Te=300)"]
    assert off["cache hit rate"] == 0.0
    assert on["cache hit rate"] > 0.8
    # ~8x fewer control messages per access.
    assert on["queries / access"] * 6 < off["queries / access"]
    # Typical latency collapses.
    assert on["mean ms"] * 4 < off["mean ms"]
