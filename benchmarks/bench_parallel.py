"""Benchmarks for the parallel replication runtime.

Not a paper artifact — these quantify the dispatch layer itself:
inline-path overhead (``jobs=1`` must stay a plain loop), process-pool
dispatch cost, and the end-to-end speedup of a real experiment sweep
fanned over workers.  The speedup test also re-checks the determinism
contract: parallel output must equal sequential output exactly.
"""

from __future__ import annotations

import time

from repro.experiments.validation import simulate_cell
from repro.runtime import (
    available_cpus,
    run_parallel,
    run_replications,
    run_trials,
    trial_seed,
)
from repro.runtime.pool import _fork_available

#: Small but real protocol workload: one (m, C, pi) validation cell.
_CONFIGS = [(3, 1, 0.1), (3, 2, 0.1), (3, 3, 0.1), (3, 2, 0.2)]
_TRIALS = 25


def _busy_trial(trial_index: int, seed: int) -> int:
    """A CPU-bound stand-in trial: deterministic in (index, seed)."""
    value = seed & 0xFFFFFFFF
    for _ in range(20_000):
        value = (value * 1103515245 + 12345 + trial_index) & 0x7FFFFFFF
    return value


def test_inline_dispatch_overhead(benchmark):
    """run_parallel(jobs=1) must cost no more than the loop it replaces."""

    def inline():
        return run_parallel(_busy_trial, [(i, i) for i in range(50)], jobs=1)

    result = benchmark(inline)
    assert len(result) == 50


def test_replication_fanout(benchmark):
    """Per-trial fan-out of seeded replications (pool path when jobs>1)."""
    jobs = min(2, available_cpus()) if _fork_available() else 1

    def fanout():
        return run_replications(_busy_trial, trials=40, seed=7, jobs=jobs)

    result = benchmark.pedantic(fanout, rounds=3, iterations=1)
    assert result == [
        _busy_trial(i, trial_seed(7, i)) for i in range(40)
    ]


def test_validation_sweep_jobs1(benchmark):
    """Sequential baseline for the validation sweep (speedup denominator)."""

    def sweep():
        return run_trials(simulate_cell, _CONFIGS, _TRIALS, seed=0, jobs=1)

    result = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert len(result) == len(_CONFIGS)


def test_parallel_sweep_matches_sequential_and_reports_speedup(capsys):
    """Determinism contract end-to-end, plus a wall-clock speedup report.

    The ≥2x target only holds on a multi-core machine; on a single-CPU
    runner this still verifies bit-identical results through the pool.
    """
    if not _fork_available():
        import pytest

        pytest.skip("platform lacks fork; pool path unavailable")
    jobs = max(2, min(4, available_cpus()))

    started = time.perf_counter()
    sequential = run_trials(simulate_cell, _CONFIGS, _TRIALS, seed=0, jobs=1)
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_trials(simulate_cell, _CONFIGS, _TRIALS, seed=0, jobs=jobs)
    parallel_s = time.perf_counter() - started

    assert parallel == sequential  # bit-identical merge
    speedup = sequential_s / parallel_s if parallel_s else float("inf")
    with capsys.disabled():
        print(
            f"\n[bench_parallel] jobs={jobs} on {available_cpus()} CPU(s): "
            f"sequential {sequential_s:.2f}s, parallel {parallel_s:.2f}s, "
            f"speedup {speedup:.2f}x"
        )
    if available_cpus() >= 4:
        assert speedup >= 2.0, f"expected >=2x on 4+ cores, got {speedup:.2f}x"
