"""Section 4.1 cost model: per-access delay — ~0 on a cache hit, O(C)
on a miss (sequential strategy), O(R) when managers are unreachable."""

from repro.experiments import latency


def test_latency_scaling(benchmark, show):
    result = benchmark.pedantic(latency.run, rounds=1, iterations=1)
    show(result)
    rows = result.as_dicts()
    for row in rows:
        assert abs(row["measured s"] - row["predicted s"]) < 0.02, row
    sequential = {
        row["C"]: row["measured s"]
        for row in rows
        if row["scenario"] == "miss/sequential"
    }
    assert sequential[5] > sequential[1] * 4  # the literal O(C)
    unreachable = {
        row["R"]: row["measured s"]
        for row in rows
        if row["scenario"] == "unreachable"
    }
    assert unreachable[8] > unreachable[1] * 7  # the O(R) worst case
