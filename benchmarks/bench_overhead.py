"""Section 4.1 cost model: steady-state overhead is O(C/Te).

Measures control-message rates for a C x Te sweep against the
``users * 2C / te`` prediction."""

from repro.experiments import overhead


def test_overhead_oc_over_te(benchmark, show):
    result = benchmark.pedantic(
        overhead.run,
        kwargs=dict(cs=(1, 2, 4), tes=(30.0, 60.0, 120.0), seed=0),
        rounds=1,
        iterations=1,
    )
    show(result)
    rows = result.as_dicts()
    for row in rows:
        assert abs(row["ratio"] - 1.0) < 0.15, row
    by_key = {(row["C"], row["Te"]): row["measured msg/s"] for row in rows}
    # O(C): doubling C doubles traffic at fixed Te.
    assert abs(by_key[(2, 60.0)] / by_key[(1, 60.0)] - 2.0) < 0.3
    # O(1/Te): doubling Te halves traffic at fixed C.
    assert abs(by_key[(2, 30.0)] / by_key[(2, 60.0)] - 2.0) < 0.3
