"""The paper's protocol vs the alternative designs (Section 3 options
and the Section 4.2 related systems) under an identical flaky WAN.

The shape that must hold: the paper's protocol is the only design with
both high availability and zero Te violations; full replication and
temporal-auth violate the bound, local-only pays with availability."""

from repro.experiments import baselines


def test_baseline_comparison(benchmark, show):
    result = benchmark.pedantic(
        baselines.run,
        kwargs=dict(seed=0, duration=1500.0),
        rounds=1,
        iterations=1,
    )
    show(result)
    rows = {row["system"]: row for row in result.as_dicts()}

    paper = rows["paper (cached quorum)"]
    assert paper["Te VIOLATIONS"] == 0
    assert paper["availability"] > 0.9

    # Designs without expiry can violate the bound under partitions.
    assert rows["full replication"]["Te VIOLATIONS"] > 0
    assert rows["temporal auth"]["Te VIOLATIONS"] > 0

    # Local-only trades availability for its consistency.
    assert rows["local only"]["availability"] < paper["availability"]
    # ...and pays the highest per-access message cost.
    assert rows["local only"]["ctrl msg/s"] > paper["ctrl msg/s"]

    # Temporal auth lets far more revoked accesses through than the
    # paper's protocol (lease >> Te).
    stale_paper = paper["stale allows <= Te"] + paper["Te VIOLATIONS"]
    stale_lease = (
        rows["temporal auth"]["stale allows <= Te"]
        + rows["temporal auth"]["Te VIOLATIONS"]
    )
    assert stale_lease > 5 * max(1, stale_paper)
