"""Reproduces paper Figure 5: the PA/PS curves against the check
quorum C, including the qualitative claims (low security at C=1, low
availability at C=M, a wide sweet spot around M/2)."""

from repro.experiments import figure5


def test_figure5(benchmark, show):
    result = benchmark(figure5.run, m=10, pi=0.1)
    show(result)
    rows = {row["C"]: row for row in result.as_dicts()}
    assert rows[1]["PS(C)"] < 0.4
    assert rows[10]["PA(C)"] < 0.4
    sweet = [
        c for c in range(1, 11)
        if rows[c]["PA(C)"] > 0.98 and rows[c]["PS(C)"] > 0.98
    ]
    assert 5 in sweet and len(sweet) >= 4
