"""Reproduces paper Table 1: effects of C on availability and security.

The values are exact binomials and must equal the paper's printed
numbers; the benchmark times the full table generation.
"""

from repro.experiments import table1
from repro.experiments.table1 import PAPER_TABLE1


def test_table1(benchmark, show):
    result = benchmark(table1.run)
    show(result)
    rows = {row["C"]: row for row in result.as_dicts()}
    for c, (pa1, ps1, pa2, ps2) in PAPER_TABLE1.items():
        assert round(rows[c]["PA(C) Pi=0.1"], 5) == pa1
        assert round(rows[c]["PS(C) Pi=0.1"], 5) == ps1
        assert round(rows[c]["PA(C) Pi=0.2"], 5) == pa2
        assert round(rows[c]["PS(C) Pi=0.2"], 5) == ps2
