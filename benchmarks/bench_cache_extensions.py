"""Extension ablation: refresh-ahead hides the periodic miss latency;
negative caching sheds unauthorized query load."""

from repro.experiments import cache_extensions


def test_cache_extensions(benchmark, show):
    result = benchmark.pedantic(
        cache_extensions.run, kwargs=dict(seed=0), rounds=1, iterations=1
    )
    show(result)
    rows = {
        (row["extension"], row["state"]): row for row in result.as_dicts()
    }
    # Refresh-ahead: p99 collapses from ~1 RTT to ~0.
    off_p99 = float(rows[("refresh-ahead", "off")]["metric 2"].split()[1])
    on_p99 = float(rows[("refresh-ahead", "on")]["metric 2"].split()[1])
    assert off_p99 > 50.0
    assert on_p99 < 5.0
    # Deny-cache: query traffic drops by an order of magnitude.
    off_queries = int(rows[("deny-cache", "off")]["traffic"].split()[0])
    on_queries = int(rows[("deny-cache", "on")]["traffic"].split()[0])
    assert on_queries * 10 < off_queries
