"""Reproduces paper Table 2: effects of M and C on availability and
security (fixed-C half and scaled-C half)."""

from repro.experiments import table2
from repro.experiments.table2 import PAPER_TABLE2


def test_table2(benchmark, show):
    result = benchmark(table2.run)
    show(result)
    for row in result.as_dicts():
        pa1, ps1, pa2, ps2 = PAPER_TABLE2[(row["M"], row["C"])]
        assert round(row["PA(C) Pi=0.1"], 5) == pa1
        assert round(row["PS(C) Pi=0.1"], 5) == ps1
        assert round(row["PA(C) Pi=0.2"], 5) == pa2
        assert round(row["PS(C) Pi=0.2"], 5) == ps2
