"""Section 3.2 guarantee: a revocation is globally effective within Te,
even when the caching host is partitioned and its clock runs at the
slowest admissible rate."""

from repro.experiments import revocation


def test_revocation_bound(benchmark, show):
    result = benchmark.pedantic(
        revocation.run,
        kwargs=dict(te_bound=60.0, clock_bound=1.1),
        rounds=1,
        iterations=1,
    )
    show(result)
    for row in result.as_dicts():
        assert row["bound"] == "OK", row
        assert row["last allow after revoke (s)"] < 60.0
    partitioned = [
        row for row in result.as_dicts() if row["network"] == "partitioned"
    ]
    connected = [
        row for row in result.as_dicts() if row["network"] == "connected"
    ]
    # Partitioned hosts ride the cache (tens of seconds); connected
    # hosts are flushed almost immediately by the forwarded Revoke.
    assert min(r["last allow after revoke (s)"] for r in partitioned) > 10.0
    assert max(r["last allow after revoke (s)"] for r in connected) < 5.0
