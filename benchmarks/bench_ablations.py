"""Section 3.3 ablation: freeze strategy vs quorum strategy while one
manager is partitioned from its peers."""

from repro.experiments import ablations


def test_freeze_vs_quorum(benchmark, show):
    result = benchmark.pedantic(ablations.run, rounds=1, iterations=1)
    show(result)
    cells = {
        (row["strategy"], row["phase"]): row["availability"]
        for row in result.as_dicts()
    }
    # Quorum rides through the manager partition untouched.
    assert cells[("quorum (C=2)", "during")] == 1.0
    # Freeze collapses availability for the duration, then recovers.
    assert cells[("freeze (Ti=30)", "before")] == 1.0
    assert cells[("freeze (Ti=30)", "during")] == 0.0
    assert cells[("freeze (Ti=30)", "after")] == 1.0
