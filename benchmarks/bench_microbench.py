"""Microbenchmarks of the substrate and the protocol hot paths.

Not a paper artifact — these quantify the simulator itself so that
regressions in the event loop or the check path are visible.
"""

from repro.core.policy import AccessPolicy
from repro.core.rights import Right
from repro.core.system import AccessControlSystem
from repro.sim.engine import Environment
from repro.sim.network import FixedLatency


def test_engine_event_throughput(benchmark):
    """Schedule-and-run cost of 10k timeout events."""

    def run_events():
        env = Environment()
        for i in range(10_000):
            env.timeout(i * 0.001)
        env.run()
        return env.now

    result = benchmark(run_events)
    assert result > 0


def test_engine_process_switching(benchmark):
    """Two processes ping-ponging through 5k events."""

    def run_processes():
        env = Environment()

        def worker():
            for _ in range(2_500):
                yield env.timeout(0.01)

        env.process(worker())
        env.process(worker())
        env.run()
        return env.now

    benchmark(run_processes)


def test_cached_access_check_throughput(benchmark):
    """Figure 3 fast path: checks served from ACL_cache(A)."""
    system = AccessControlSystem(
        n_managers=3,
        n_hosts=1,
        policy=AccessPolicy(check_quorum=2, expiry_bound=1e9),
        latency=FixedLatency(0.01),
        clock_drift=False,
    )
    system.seed_grant("app", "u")
    host = system.hosts[0]
    warm = host.request_access("app", "u")
    system.run(until=5.0)
    assert warm.value.allowed

    def thousand_cache_hits():
        processes = [host.request_access("app", "u") for _ in range(1_000)]
        system.run(until=system.env.now + 1.0)
        return [process.value for process in processes]

    decisions = benchmark(thousand_cache_hits)
    assert len(decisions) == 1_000
    assert all(decision.reason == "cache" for decision in decisions)


def test_verified_access_check_round(benchmark):
    """Full quorum verification round (miss -> 3 queries -> decide)."""
    system = AccessControlSystem(
        n_managers=3,
        n_hosts=1,
        policy=AccessPolicy(check_quorum=2, expiry_bound=1e9),
        latency=FixedLatency(0.01),
        clock_drift=False,
    )
    host = system.hosts[0]
    counter = [0]

    def verified_check():
        counter[0] += 1
        user = f"u{counter[0]}"
        system.seed_grant("app", user)
        process = host.request_access("app", user)
        system.run(until=system.env.now + 1.0)
        return process.value

    decision = benchmark(verified_check)
    assert decision.allowed and decision.reason == "verified"
