"""Tests for the full-replication baseline."""

from __future__ import annotations

import pytest

from repro.baselines.full_replication import FullReplicationSystem
from repro.core.rights import Right
from repro.sim.network import FixedLatency
from repro.sim.partitions import ScriptedConnectivity

APP = "app"


def build(seed=0):
    connectivity = ScriptedConnectivity()
    system = FullReplicationSystem(
        3, 2, applications=(APP,), connectivity=connectivity,
        latency=FixedLatency(0.05), seed=seed,
    )
    return system, connectivity


class TestLocalChecks:
    def test_seeded_grant_checked_locally(self):
        system, _ = build()
        system.seed_grant(APP, "u")
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=1.0)
        decision = process.value
        assert decision.allowed
        assert decision.latency == 0.0  # no network involved

    def test_unknown_user_denied_locally(self):
        system, _ = build()
        system.seed_grant(APP, "u")
        process = system.hosts[0].request_access(APP, "other")
        system.run(until=1.0)
        assert not process.value.allowed


class TestPropagation:
    def test_add_reaches_all_hosts(self):
        system, _ = build()
        system.managers[0].add(APP, "newbie", Right.USE)
        system.run(until=10.0)
        for host in system.hosts:
            assert host.replicas[APP].check("newbie", Right.USE)
        for manager in system.managers:
            assert manager.acls[APP].check("newbie", Right.USE)

    def test_revoke_reaches_connected_hosts(self):
        system, _ = build()
        system.seed_grant(APP, "u")
        system.managers[0].revoke(APP, "u", Right.USE)
        system.run(until=10.0)
        for host in system.hosts:
            assert not host.replicas[APP].check("u", Right.USE)

    def test_partitioned_host_serves_stale_grant_unboundedly(self):
        """The weakness the paper's Te bound removes: a partitioned
        replica honours revoked rights for as long as the partition
        lasts."""
        system, connectivity = build()
        system.seed_grant(APP, "u")
        connectivity.isolate("h0", ["m0", "m1", "m2"])
        system.managers[0].revoke(APP, "u", Right.USE)
        system.run(until=500.0)  # far beyond any reasonable Te
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=501.0)
        assert process.value.allowed  # still serving the stale right

    def test_persistent_retransmit_heals_partition(self):
        system, connectivity = build()
        system.seed_grant(APP, "u")
        connectivity.isolate("h0", ["m0", "m1", "m2"])
        system.managers[0].revoke(APP, "u", Right.USE)
        system.run(until=20.0)
        connectivity.reconnect("h0", ["m0", "m1", "m2"])
        system.run(until=30.0)
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=31.0)
        assert not process.value.allowed

    def test_host_crash_loses_replica_then_refills(self):
        system, _ = build()
        system.managers[0].add(APP, "u", Right.USE)
        system.run(until=5.0)
        host = system.hosts[0]
        host.crash()
        assert len(host.replicas[APP]) == 0
        host.recover()
        # The manager keeps retransmitting until the host acks again.
        system.run(until=20.0)
        assert host.replicas[APP].check("u", Right.USE)
