"""Tests for the local-only baseline."""

from __future__ import annotations

import pytest

from repro.baselines.local_only import LocalOnlySystem
from repro.core.rights import Right
from repro.sim.network import FixedLatency
from repro.sim.partitions import ScriptedConnectivity

APP = "app"


def build(seed=0):
    connectivity = ScriptedConnectivity()
    system = LocalOnlySystem(
        3, 1, applications=(APP,), connectivity=connectivity,
        latency=FixedLatency(0.05), seed=seed,
    )
    return system, connectivity


class TestChecks:
    def test_grant_at_one_manager_visible_via_version_merge(self):
        system, _ = build()
        system.managers[1].add(APP, "u", Right.USE)
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=5.0)
        assert process.value.allowed

    def test_revoke_at_any_manager_wins(self):
        system, _ = build()
        system.managers[0].add(APP, "u", Right.USE)
        system.managers[2].revoke(APP, "u", Right.USE)
        # m2's revoke has a higher per-origin counter? No — counters are
        # per manager.  The revoke must still win because the host takes
        # the max version and m2's (1, "m2") ties-break above m0's
        # (1, "m0").
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=5.0)
        assert not process.value.allowed

    def test_every_check_queries_all_managers(self):
        system, _ = build()
        system.seed_grant(APP, "u")
        before = system.network.messages_sent
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=5.0)
        assert process.value.allowed
        # 3 queries + 3 responses.
        assert system.network.messages_sent - before == 6

    def test_no_caching_means_repeat_cost(self):
        system, _ = build()
        system.seed_grant(APP, "u")
        for _ in range(2):
            process = system.hosts[0].request_access(APP, "u")
            system.run(until=system.env.now + 5.0)
            assert process.value.allowed
        assert system.network.messages_sent == 12

    def test_one_unreachable_manager_blocks_all_checks(self):
        """The design's fatal flaw under partitions."""
        system, connectivity = build()
        system.seed_grant(APP, "u")
        connectivity.set_down("h0", "m2")
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=30.0)
        assert not process.value.allowed
        assert process.value.reason == "exhausted"

    def test_updates_cost_nothing(self):
        system, _ = build()
        before = system.network.messages_sent
        system.managers[0].add(APP, "u", Right.USE)
        system.run(until=5.0)
        assert system.network.messages_sent == before
