"""Tests for the eventual-consistency baseline ([23]-style)."""

from __future__ import annotations

import pytest

from repro.baselines.eventual import EventualSystem
from repro.core.rights import Right
from repro.sim.network import FixedLatency
from repro.sim.partitions import ScriptedConnectivity

APP = "app"


def build(gossip_interval=5.0, seed=0):
    connectivity = ScriptedConnectivity()
    system = EventualSystem(
        3, 1, applications=(APP,), connectivity=connectivity,
        latency=FixedLatency(0.05), seed=seed, gossip_interval=gossip_interval,
    )
    return system, connectivity


class TestGossipConvergence:
    def test_update_spreads_via_gossip(self):
        system, _ = build(gossip_interval=2.0)
        system.managers[0].add(APP, "u", Right.USE)
        system.run(until=60.0)
        for manager in system.managers:
            assert manager.acls[APP].check("u", Right.USE)

    def test_convergence_after_partition_heals(self):
        system, connectivity = build(gossip_interval=2.0)
        connectivity.isolate("m0", ["m1", "m2"])
        system.managers[0].revoke(APP, "ghost", Right.USE)
        system.managers[0].add(APP, "u", Right.USE)
        system.run(until=30.0)
        assert not system.managers[1].acls[APP].check("u", Right.USE)
        connectivity.reconnect("m0", ["m1", "m2"])
        system.run(until=90.0)
        for manager in system.managers:
            assert manager.acls[APP].check("u", Right.USE)

    def test_concurrent_updates_converge_deterministically(self):
        system, _ = build(gossip_interval=1.0)
        system.managers[0].add(APP, "u", Right.USE)
        system.managers[1].revoke(APP, "u", Right.USE)
        system.run(until=60.0)
        verdicts = {m.acls[APP].check("u", Right.USE) for m in system.managers}
        assert len(verdicts) == 1


class TestHostBehaviour:
    def test_grant_cached_forever(self):
        system, connectivity = build()
        system.seed_grant(APP, "u")
        first = system.hosts[0].request_access(APP, "u")
        system.run(until=2.0)
        assert first.value.allowed
        # Partition the host: the cache has no expiry, so access continues.
        connectivity.isolate("h0", ["m0", "m1", "m2"])
        system.run(until=1_000.0)
        second = system.hosts[0].request_access(APP, "u")
        system.run(until=1_001.0)
        assert second.value.allowed
        assert second.value.reason == "cache"

    def test_revoke_notification_flushes_connected_host(self):
        system, _ = build()
        system.seed_grant(APP, "u")
        first = system.hosts[0].request_access(APP, "u")
        system.run(until=2.0)
        assert first.value.allowed
        # Revoke at a manager the host queried (h0 queried m0 first).
        system.managers[0].revoke(APP, "u", Right.USE)
        system.run(until=30.0)
        probe = system.hosts[0].request_access(APP, "u")
        system.run(until=35.0)
        assert not probe.value.allowed

    def test_gossiped_revoke_triggers_forwarding_from_granting_manager(self):
        """The granting manager learns of the revoke via gossip and
        must flush its own hosts."""
        system, _ = build(gossip_interval=2.0)
        system.seed_grant(APP, "u")
        first = system.hosts[0].request_access(APP, "u")
        system.run(until=2.0)
        assert first.value.allowed
        # Revoke at a *different* manager than the one that granted.
        system.managers[2].revoke(APP, "u", Right.USE)
        system.run(until=60.0)  # gossip + forward
        assert not system.hosts[0]._cache[APP]

    def test_unbounded_staleness_under_partition(self):
        """No time bound: a partitioned host honours revoked rights
        arbitrarily long — the paper's criticism of [23]."""
        system, connectivity = build()
        system.seed_grant(APP, "u")
        first = system.hosts[0].request_access(APP, "u")
        system.run(until=2.0)
        assert first.value.allowed
        connectivity.isolate("h0", ["m0", "m1", "m2"])
        system.managers[0].revoke(APP, "u", Right.USE)
        system.run(until=2_000.0)
        probe = system.hosts[0].request_access(APP, "u")
        system.run(until=2_001.0)
        assert probe.value.allowed  # stale for 2000 s and counting
