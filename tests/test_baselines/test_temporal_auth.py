"""Tests for the temporal-authorization baseline ([4]-style)."""

from __future__ import annotations

import pytest

from repro.baselines.temporal_auth import TemporalAuthSystem
from repro.core.rights import Right
from repro.sim.network import FixedLatency
from repro.sim.partitions import ScriptedConnectivity

APP = "app"


def build(lease_duration=50.0, seed=0):
    connectivity = ScriptedConnectivity()
    system = TemporalAuthSystem(
        2, 1, applications=(APP,), connectivity=connectivity,
        latency=FixedLatency(0.05), seed=seed, lease_duration=lease_duration,
        clock_drift=False,
    )
    return system, connectivity


class TestLeases:
    def test_lease_granted_and_cached(self):
        system, _ = build()
        system.seed_grant(APP, "u")
        first = system.hosts[0].request_access(APP, "u")
        system.run(until=2.0)
        assert first.value.allowed
        second = system.hosts[0].request_access(APP, "u")
        system.run(until=3.0)
        assert second.value.reason == "cache"
        assert system.hosts[0].stats["lease_hits"] == 1

    def test_lease_expires_and_renews(self):
        system, _ = build(lease_duration=10.0)
        system.seed_grant(APP, "u")
        first = system.hosts[0].request_access(APP, "u")
        system.run(until=2.0)
        assert first.value.allowed
        system.run(until=15.0)  # lease expired
        probe = system.hosts[0].request_access(APP, "u")
        system.run(until=20.0)
        assert probe.value.allowed
        assert probe.value.reason == "verified"  # renewed, not cached
        assert sum(a.leases_issued for a in system.managers) == 2

    def test_revocation_effective_at_lease_boundary(self):
        """Revocation latency is bounded by the lease term — no push."""
        system, connectivity = build(lease_duration=30.0)
        system.seed_grant(APP, "u")
        first = system.hosts[0].request_access(APP, "u")
        system.run(until=2.0)
        assert first.value.allowed
        # Revoke; the lease keeps working until it runs out.
        for authority in system.managers:
            pass
        system.managers[0].revoke(APP, "u", Right.USE)
        mid = system.hosts[0].request_access(APP, "u")
        system.run(until=10.0)
        assert mid.value.allowed  # still inside the lease
        system.run(until=40.0)  # lease expired
        probe = system.hosts[0].request_access(APP, "u")
        system.run(until=45.0)
        assert not probe.value.allowed

    def test_shared_database_means_any_authority_revokes(self):
        system, _ = build(lease_duration=5.0)
        system.seed_grant(APP, "u")
        system.managers[1].revoke(APP, "u", Right.USE)
        probe = system.hosts[0].request_access(APP, "u")
        system.run(until=5.0)
        assert not probe.value.allowed  # both authorities see the revoke

    def test_denied_user_gets_no_lease(self):
        system, _ = build()
        probe = system.hosts[0].request_access(APP, "stranger")
        system.run(until=5.0)
        assert not probe.value.allowed
        assert system.hosts[0]._leases[APP] == {}

    def test_unreachable_authorities_fail_over_then_exhaust(self):
        system, connectivity = build()
        system.seed_grant(APP, "u")
        connectivity.isolate("h0", ["m0", "m1"])
        probe = system.hosts[0].request_access(APP, "u")
        system.run(until=30.0)
        assert not probe.value.allowed
        assert probe.value.attempts == 3

    def test_invalid_lease_duration(self):
        with pytest.raises(ValueError):
            build(lease_duration=0.0)
