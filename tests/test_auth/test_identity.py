"""Tests for principals and the authenticator."""

from __future__ import annotations

import random

import pytest

from repro.auth.identity import Authenticator, Principal
from repro.auth.keys import generate_keypair


@pytest.fixture(scope="module")
def alice():
    return Principal("alice", generate_keypair(bits=128, rng=random.Random(1)))


@pytest.fixture(scope="module")
def bob():
    return Principal("bob", generate_keypair(bits=128, rng=random.Random(2)))


class TestAuthenticator:
    def test_registered_principal_authenticates(self, alice):
        auth = Authenticator()
        auth.register(alice)
        assert auth.authenticate(alice.sign({"hello": 1}))

    def test_unknown_signer_rejected(self, alice):
        auth = Authenticator()
        assert not auth.authenticate(alice.sign("x"))

    def test_forged_identity_rejected(self, alice, bob):
        """bob signs with his key but claims to be alice."""
        auth = Authenticator()
        auth.register(alice)
        auth.register(bob)
        message = bob.sign("payload")
        forged = type(message)(
            payload=message.payload,
            signature=type(message.signature)(
                signer="alice", value=message.signature.value
            ),
        )
        assert not auth.authenticate(forged)

    def test_tampered_payload_rejected(self, alice):
        auth = Authenticator()
        auth.register(alice)
        message = alice.sign({"amount": 10})
        tampered = type(message)(payload={"amount": 99}, signature=message.signature)
        assert not auth.authenticate(tampered)

    def test_compromised_identity_still_authenticates(self, alice):
        """Compromise is an authorization problem, not an
        authentication one — the adversary holds the real key."""
        auth = Authenticator()
        auth.register(alice)
        auth.mark_compromised("alice")
        assert "alice" in auth.compromised
        assert auth.authenticate(alice.sign("still valid"))

    def test_knows(self, alice):
        auth = Authenticator()
        assert not auth.knows("alice")
        auth.register(alice)
        assert auth.knows("alice")

    def test_rekeying_replaces_old_key(self):
        old = Principal("u", generate_keypair(bits=128, rng=random.Random(3)))
        new = Principal("u", generate_keypair(bits=128, rng=random.Random(4)))
        auth = Authenticator()
        auth.register(old)
        auth.register(new)
        assert auth.authenticate(new.sign("m"))
        assert not auth.authenticate(old.sign("m"))


class TestPrincipal:
    def test_default_keypair_generated(self):
        principal = Principal("p1")
        assert principal.public_key.n > 0

    def test_sign_produces_verifiable_message(self, alice):
        auth = Authenticator()
        auth.register_key("alice", alice.public_key)
        assert auth.authenticate(alice.sign([1, 2, 3]))
