"""Tests for toy RSA key generation."""

from __future__ import annotations

import random

import pytest

from repro.auth.keys import generate_keypair, is_probable_prime


class TestMillerRabin:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 149):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 21, 100, 561, 1105):  # incl. Carmichael
            assert not is_probable_prime(n)

    def test_negative(self):
        assert not is_probable_prime(-7)

    def test_known_large_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)

    def test_known_large_composite(self):
        assert not is_probable_prime((2**127 - 1) * 3)

    def test_agrees_with_trial_division_up_to_2000(self):
        def slow_prime(n):
            if n < 2:
                return False
            return all(n % d for d in range(2, int(n**0.5) + 1))

        for n in range(2000):
            assert is_probable_prime(n) == slow_prime(n), n


class TestKeygen:
    def test_roundtrip_encryption_property(self):
        pair = generate_keypair(bits=128, rng=random.Random(1))
        message = 123456789
        cipher = pow(message, pair.public.e, pair.public.n)
        assert pow(cipher, pair.private.d, pair.private.n) == message

    def test_deterministic_given_rng(self):
        a = generate_keypair(bits=128, rng=random.Random(5))
        b = generate_keypair(bits=128, rng=random.Random(5))
        assert a.public == b.public and a.private == b.private

    def test_different_seeds_differ(self):
        a = generate_keypair(bits=128, rng=random.Random(1))
        b = generate_keypair(bits=128, rng=random.Random(2))
        assert a.public != b.public

    def test_modulus_size(self):
        pair = generate_keypair(bits=256, rng=random.Random(3))
        assert pair.public.bits >= 250

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=16)
