"""Tests for message signing."""

from __future__ import annotations

import random

import pytest

from repro.auth.keys import generate_keypair
from repro.auth.signatures import canonical_bytes, message_digest, sign, verify
from repro.core.messages import AppRequest
from repro.core.rights import Right


@pytest.fixture(scope="module")
def keys():
    return generate_keypair(bits=128, rng=random.Random(9))


class TestCanonical:
    def test_primitives(self):
        assert canonical_bytes(1) != canonical_bytes("1")
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(None) == canonical_bytes(None)

    def test_dict_order_independent(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_sequences(self):
        assert canonical_bytes([1, 2]) == canonical_bytes((1, 2))
        assert canonical_bytes([1, 2]) != canonical_bytes([2, 1])

    def test_sets_order_independent(self):
        assert canonical_bytes({1, 2, 3}) == canonical_bytes({3, 1, 2})

    def test_dataclass_support(self):
        request = AppRequest(request_id=1, application="a", user="u", payload="p")
        same = AppRequest(request_id=1, application="a", user="u", payload="p")
        different = AppRequest(request_id=2, application="a", user="u", payload="p")
        assert canonical_bytes(request) == canonical_bytes(same)
        assert canonical_bytes(request) != canonical_bytes(different)

    def test_enum_support(self):
        assert canonical_bytes(Right.USE) != canonical_bytes(Right.MANAGE)
        assert canonical_bytes(Right.USE) == canonical_bytes(Right.USE)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    def test_digest_stability(self):
        assert message_digest({"k": [1, 2]}) == message_digest({"k": [1, 2]})


class TestSignVerify:
    def test_roundtrip(self, keys):
        signature = sign({"op": "add"}, "alice", keys.private)
        assert verify({"op": "add"}, signature, keys.public)

    def test_tampered_payload_fails(self, keys):
        signature = sign({"op": "add"}, "alice", keys.private)
        assert not verify({"op": "revoke"}, signature, keys.public)

    def test_wrong_key_fails(self, keys):
        other = generate_keypair(bits=128, rng=random.Random(10))
        signature = sign("msg", "alice", keys.private)
        assert not verify("msg", signature, other.public)

    def test_tampered_signature_value_fails(self, keys):
        signature = sign("msg", "alice", keys.private)
        forged = type(signature)(signer=signature.signer, value=signature.value + 1)
        assert not verify("msg", forged, keys.public)

    def test_signature_records_signer(self, keys):
        assert sign("m", "carol", keys.private).signer == "carol"

    def test_dataclass_payload_roundtrip(self, keys):
        request = AppRequest(request_id=7, application="stocks", user="u", payload="T")
        signature = sign(request, "u", keys.private)
        assert verify(request, signature, keys.public)
        tampered = AppRequest(request_id=7, application="stocks", user="evil",
                              payload="T")
        assert not verify(tampered, signature, keys.public)
