"""End-to-end tests for the fault-schedule fuzzer.

The two acceptance properties:

* On the correct implementation, fuzz cells pass — the oracles raise no
  false alarms under partitions, host crashes, and drifting clocks.
* With the Figure 3 ``delta`` subtraction deliberately removed, the
  fuzzer reports a ``te_bound`` violation and shrinks the failure to a
  minimal schedule whose JSON replays the violation deterministically.
"""

from __future__ import annotations

import pytest

from repro.core.host import AccessControlHost
from repro.experiments.cli import main as cli_main
from repro.verify import Schedule, generate_schedule, run_cell, run_fuzz
from repro.verify.fuzz import shrink_schedule


@pytest.fixture
def broken_delta(monkeypatch):
    """Reintroduce the classic Figure 3 bug: stamp ``Time() + te``
    without subtracting the round-trip delta."""

    def stamp_without_delta(self, send_local, te, policy):
        return self.clock.now() + te

    monkeypatch.setattr(AccessControlHost, "_expiry_limit", stamp_without_delta)


class TestCleanRuns:
    def test_small_sweep_passes(self):
        report = run_fuzz(7, 6, jobs=1)
        assert report.ok
        assert len(report.results) == 6
        assert all(result.ok for result in report.results)

    def test_cells_actually_exercise_the_protocol(self):
        report = run_fuzz(7, 6, jobs=1)
        totals = {}
        for result in report.results:
            for key, value in result.stats.items():
                totals[key] = totals.get(key, 0) + value
        assert totals["access_allowed"] > 0
        assert totals["cache_stored"] > 0
        assert totals["update_issued"] > 0
        assert totals["partition_started"] > 0

    def test_replay_is_deterministic(self):
        schedule = generate_schedule(7, 2)
        assert run_cell(schedule) == run_cell(schedule)

    def test_jobs_do_not_change_results(self):
        sequential = run_fuzz(7, 4, jobs=1)
        parallel = run_fuzz(7, 4, jobs=2)
        assert sequential.results == parallel.results

    @pytest.mark.slow
    def test_wide_sweep_passes(self):
        # The CI fuzz-smoke configuration: same seed, more cells.
        report = run_fuzz(7, 50, jobs=0)
        assert report.ok, report.summary()


class TestBrokenDeltaIsCaught:
    def test_fuzzer_reports_te_bound_violation(self, broken_delta):
        report = run_fuzz(7, 2, jobs=1)
        assert not report.ok
        failure = report.failures[0]
        assert failure.violations[0]["invariant"] == "te_bound"
        assert "delta" in failure.violations[0]["message"]

    def test_minimal_schedule_replays_deterministically(
        self, broken_delta, tmp_path
    ):
        report = run_fuzz(7, 1, jobs=1)
        assert not report.ok
        failure = report.failures[0]
        # The shrunk schedule still reproduces the same invariant...
        path = tmp_path / "minimal.json"
        failure.minimal.save(str(path))
        replayed = run_cell(Schedule.load(str(path)))
        assert not replayed.ok
        assert replayed.violations[0]["invariant"] == "te_bound"
        # ...bit-for-bit: two replays agree on every violation detail.
        assert replayed == run_cell(failure.minimal)

    def test_shrinking_reduces_fault_events(self, broken_delta):
        schedule = generate_schedule(7, 0)
        assert schedule.fault_count() > 0
        minimal, steps = shrink_schedule(schedule, "te_bound")
        assert steps > 0
        # The stamp bug needs no faults at all; shrinking finds that.
        assert minimal.fault_count() < schedule.fault_count()

    def test_without_shrink_original_schedule_is_kept(self, broken_delta):
        report = run_fuzz(7, 1, jobs=1, shrink=False)
        failure = report.failures[0]
        assert failure.minimal == failure.schedule
        assert failure.shrink_steps == 0


class TestFuzzCli:
    def test_clean_sweep_exits_zero(self, capsys):
        assert cli_main(["fuzz", "--cells", "3", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "3 cells" in out
        assert "0 failed" in out

    def test_replay_flag(self, tmp_path, capsys):
        schedule = generate_schedule(7, 0)
        path = tmp_path / "cell0.json"
        schedule.save(str(path))
        assert cli_main(["fuzz", "--schedule", str(path)]) == 0
        assert "replay passed" in capsys.readouterr().out

    def test_failure_writes_minimal_schedule(
        self, broken_delta, tmp_path, capsys
    ):
        code = cli_main(
            [
                "fuzz",
                "--cells", "1",
                "--seed", "7",
                "--out", str(tmp_path),
            ]
        )
        assert code == 1
        written = list(tmp_path.glob("fuzz-cell*-te_bound.json"))
        assert len(written) == 1
        # The written schedule replays to a failing exit code.
        assert cli_main(["fuzz", "--schedule", str(written[0])]) == 1
        out = capsys.readouterr().out
        assert "te_bound" in out

    def test_bad_cells_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["fuzz", "--cells", "0"])
