"""Unit tests for the online invariant oracles.

Each oracle is exercised twice: once on protocol-conformant traffic
(must stay silent) and once on a hand-published record stream encoding
the specific violation it exists to catch.
"""

from __future__ import annotations

import pytest

from repro.core.cache import CacheEntry
from repro.core.policy import AccessPolicy
from repro.core.rights import AclEntry, Right, Version
from repro.core.system import AccessControlSystem
from repro.sim.trace import TraceKind
from repro.verify import (
    InvariantChecker,
    InvariantViolation,
    checking_enabled,
    set_checking,
)

APP = "app"


def make_system(**kwargs) -> AccessControlSystem:
    kwargs.setdefault("n_managers", 3)
    kwargs.setdefault("n_hosts", 2)
    kwargs.setdefault("applications", (APP,))
    kwargs.setdefault("policy", AccessPolicy(check_quorum=2, expiry_bound=60.0))
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("check_invariants", False)
    return AccessControlSystem(**kwargs)


class TestCheckerWiring:
    def test_attach_returns_checker_with_all_oracles(self):
        system = make_system()
        checker = system.attach_invariant_checker()
        assert system.checker is checker
        names = {inv.name for inv in checker.invariants}
        assert names == {
            "te_bound",
            "freeze_window",
            "quorum_intersection",
            "cache_expiry",
            "convergence",
        }

    def test_constructor_flag_attaches(self):
        system = make_system(check_invariants=True)
        assert isinstance(system.checker, InvariantChecker)

    def test_default_off(self):
        assert make_system().checker is None

    def test_clean_protocol_run_stays_silent(self):
        system = make_system(check_invariants=True)
        system.seed_grant(APP, "alice")
        system.hosts[0].request_access(APP, "alice")
        system.run(until=120.0)
        assert system.checker.ok
        assert system.checker.finalize() == []

    def test_checking_enabled_env_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        set_checking(None)
        assert not checking_enabled()
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert checking_enabled()
        set_checking(False)
        assert not checking_enabled()
        set_checking(None)
        assert checking_enabled()
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "off")
        assert not checking_enabled()

    def test_env_flag_attaches_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        set_checking(None)
        system = AccessControlSystem(
            n_managers=3, n_hosts=1, applications=(APP,), seed=0
        )
        assert isinstance(system.checker, InvariantChecker)


class TestCacheExpiryOracle:
    def test_expired_cache_hit_raises(self):
        system = make_system()
        system.attach_invariant_checker()
        with pytest.raises(InvariantViolation) as excinfo:
            system.tracer.publish(
                TraceKind.CACHE_HIT,
                "h0",
                application=APP,
                user="alice",
                limit=10.0,
                now_local=25.0,
            )
        violation = excinfo.value
        assert violation.invariant == "cache_expiry"
        assert violation.details["limit"] == 10.0
        assert violation.trace, "violation must carry the offending slice"
        assert violation.trace[-1]["kind"] == TraceKind.CACHE_HIT

    def test_live_cache_hit_is_fine(self):
        system = make_system()
        system.attach_invariant_checker()
        system.tracer.publish(
            TraceKind.CACHE_HIT,
            "h0",
            application=APP,
            user="alice",
            limit=30.0,
            now_local=25.0,
        )
        assert system.checker.ok


class TestTeBoundStampOracle:
    def test_missing_delta_subtraction_detected(self):
        system = make_system()
        system.attach_invariant_checker()
        # send_local=100, round trip took 2 local units, te=50:
        # Figure 3 requires limit <= 100 + 50; stamping now+te gives 152.
        with pytest.raises(InvariantViolation) as excinfo:
            system.tracer.publish(
                TraceKind.CACHE_STORED,
                "h0",
                application=APP,
                user="alice",
                right="use",
                limit=152.0,
                send_local=100.0,
                now_local=102.0,
                te=50.0,
            )
        assert excinfo.value.invariant == "te_bound"
        assert "delta" in excinfo.value.message

    def test_conformant_stamp_accepted(self):
        system = make_system()
        system.attach_invariant_checker()
        system.tracer.publish(
            TraceKind.CACHE_STORED,
            "h0",
            application=APP,
            user="alice",
            right="use",
            limit=150.0,
            send_local=100.0,
            now_local=102.0,
            te=50.0,
        )
        assert system.checker.ok

    def test_te_above_policy_budget_detected(self):
        system = make_system()
        system.attach_invariant_checker()
        policy = system.policy
        too_much = policy.te_local * 2.0
        with pytest.raises(InvariantViolation) as excinfo:
            system.tracer.publish(
                TraceKind.CACHE_STORED,
                "h0",
                application=APP,
                user="alice",
                right="use",
                limit=0.0,
                send_local=0.0,
                now_local=0.0,
                te=too_much,
            )
        assert excinfo.value.invariant == "te_bound"


class TestTeBoundSemanticOracle:
    def _publish_revocation(self, system, at_quorum: float):
        system.tracer.publish(
            TraceKind.GRANT_SEEDED, "system",
            application=APP, user="alice", right="use",
        )
        system.tracer.publish(
            TraceKind.UPDATE_ISSUED, "m0",
            application=APP, user="alice", right="use",
            grant=False, update_id="m0:1", version=(2, "m0"),
        )
        system.tracer.publish(
            TraceKind.UPDATE_QUORUM_REACHED, "m0",
            update_id="m0:1", application=APP,
            elapsed=at_quorum, acks=2, grant=False,
        )

    def test_access_long_after_revocation_quorum_raises(self):
        system = make_system()
        system.attach_invariant_checker()
        self._publish_revocation(system, at_quorum=0.0)
        # Te=60 and quorum was reached at t=0; jump far past the bound.
        system.run(until=200.0)
        with pytest.raises(InvariantViolation) as excinfo:
            system.tracer.publish(
                TraceKind.ACCESS_ALLOWED, "h0",
                application=APP, user="alice", reason="cache",
                attempts=0, responses=0, latency=0.0,
            )
        violation = excinfo.value
        assert violation.invariant == "te_bound"
        assert violation.details["overshoot"] > 0

    def test_access_within_grace_window_is_fine(self):
        system = make_system()
        system.attach_invariant_checker()
        self._publish_revocation(system, at_quorum=0.0)
        system.run(until=30.0)  # still inside Te=60
        system.tracer.publish(
            TraceKind.ACCESS_ALLOWED, "h0",
            application=APP, user="alice", reason="cache",
            attempts=0, responses=0, latency=0.0,
        )
        assert system.checker.ok

    def test_default_allow_is_exempt(self):
        system = make_system()
        system.attach_invariant_checker()
        self._publish_revocation(system, at_quorum=0.0)
        system.run(until=200.0)
        system.tracer.publish(
            TraceKind.ACCESS_DEFAULT_ALLOWED, "h0",
            application=APP, user="alice", reason="default_allow",
            attempts=2, responses=0, latency=0.0,
        )
        assert system.checker.ok

    def test_regrant_clears_the_bound(self):
        system = make_system()
        system.attach_invariant_checker()
        self._publish_revocation(system, at_quorum=0.0)
        system.tracer.publish(
            TraceKind.UPDATE_ISSUED, "m1",
            application=APP, user="alice", right="use",
            grant=True, update_id="m1:1", version=(3, "m1"),
        )
        system.run(until=500.0)
        system.tracer.publish(
            TraceKind.ACCESS_ALLOWED, "h0",
            application=APP, user="alice", reason="verified",
            attempts=1, responses=2, latency=0.1,
        )
        assert system.checker.ok

    def test_never_granted_user_allowed_raises(self):
        system = make_system()
        system.attach_invariant_checker()
        with pytest.raises(InvariantViolation) as excinfo:
            system.tracer.publish(
                TraceKind.ACCESS_ALLOWED, "h0",
                application=APP, user="mallory", reason="verified",
                attempts=1, responses=2, latency=0.1,
            )
        assert "never" in excinfo.value.message


class TestQuorumIntersectionOracle:
    def test_short_update_quorum_raises(self):
        system = make_system()  # M=3, C=2 -> update quorum 2
        system.attach_invariant_checker()
        with pytest.raises(InvariantViolation) as excinfo:
            system.tracer.publish(
                TraceKind.UPDATE_QUORUM_REACHED, "m0",
                update_id="m0:1", application=APP,
                elapsed=1.0, acks=1, grant=False,
            )
        assert excinfo.value.invariant == "quorum_intersection"

    def test_short_check_quorum_raises(self):
        system = make_system()
        system.attach_invariant_checker()
        # Grant first so the Te-bound oracle has nothing to object to.
        system.seed_grant(APP, "alice")
        with pytest.raises(InvariantViolation) as excinfo:
            system.tracer.publish(
                TraceKind.ACCESS_ALLOWED, "h0",
                application=APP, user="alice", reason="verified",
                attempts=1, responses=1, latency=0.1,
            )
        assert excinfo.value.invariant == "quorum_intersection"

    def test_full_quorums_accepted(self):
        system = make_system()
        system.attach_invariant_checker()
        system.tracer.publish(
            TraceKind.UPDATE_QUORUM_REACHED, "m0",
            update_id="m0:1", application=APP,
            elapsed=1.0, acks=2, grant=True,
        )
        violations = [
            v for v in system.checker.violations
            if v.invariant == "quorum_intersection"
        ]
        assert violations == []


class TestFreezeWindowOracle:
    def test_double_freeze_transition_raises(self):
        policy = AccessPolicy(
            check_quorum=2, expiry_bound=60.0, use_freeze=True,
            inaccessibility_period=15.0,
        )
        system = make_system(policy=policy)
        system.attach_invariant_checker()
        system.tracer.publish(
            TraceKind.MANAGER_FROZEN, "m0", application=APP
        )
        with pytest.raises(InvariantViolation) as excinfo:
            system.tracer.publish(
                TraceKind.MANAGER_FROZEN, "m0", application=APP
            )
        assert excinfo.value.invariant == "freeze_window"

    def test_freeze_unfreeze_cycle_is_fine(self):
        policy = AccessPolicy(
            check_quorum=2, expiry_bound=60.0, use_freeze=True,
            inaccessibility_period=15.0,
        )
        system = make_system(policy=policy)
        system.attach_invariant_checker()
        for kind in (
            TraceKind.MANAGER_FROZEN,
            TraceKind.MANAGER_UNFROZEN,
            TraceKind.MANAGER_FROZEN,
        ):
            system.tracer.publish(kind, "m0", application=APP)
        assert system.checker.ok


class TestConvergenceOracle:
    def test_diverged_manager_acls_reported(self):
        system = make_system()
        checker = system.attach_invariant_checker(raise_on_violation=False)
        system.seed_grant(APP, "alice")
        system.run(until=50.0)
        # Tamper with one replica out-of-protocol.
        system.managers[2].acl(APP).apply(
            AclEntry(
                user="alice", right=Right.USE, granted=False,
                version=Version(99, "m2"),
            )
        )
        checker.finalize()
        assert any(v.invariant == "convergence" for v in checker.violations)

    def test_stale_live_cache_entry_reported(self):
        system = make_system()
        checker = system.attach_invariant_checker(raise_on_violation=False)
        system.run(until=10.0)
        host = system.hosts[0]
        cache = host.cache_for(APP)
        cache.store(
            CacheEntry(
                user="mallory", right=Right.USE,
                limit=host.clock.now() + 1_000.0,
                version=Version(1, "m0"),
            )
        )
        checker.finalize()
        assert any(v.invariant == "convergence" for v in checker.violations)

    def test_converged_state_is_clean(self):
        system = make_system()
        checker = system.attach_invariant_checker(raise_on_violation=False)
        system.seed_grant(APP, "alice")
        system.managers[0].revoke(APP, "bob", Right.USE)
        system.run(until=100.0)
        checker.finalize()
        assert checker.violations == []


class TestViolationStructure:
    def test_as_dict_is_json_friendly(self):
        import json

        system = make_system()
        checker = system.attach_invariant_checker(raise_on_violation=False)
        system.tracer.publish(
            TraceKind.CACHE_HIT, "h0",
            application=APP, user="alice", limit=0.0, now_local=9.0,
        )
        assert not checker.ok
        payload = checker.violations[0].as_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["invariant"] == "cache_expiry"
        assert round_tripped["trace"][-1]["data"]["user"] == "alice"


@pytest.fixture(autouse=True)
def _reset_checking_flag():
    yield
    set_checking(None)
