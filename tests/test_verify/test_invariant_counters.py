"""Mergeable invariant-oracle counters (verify/invariants.py).

``InvariantCounters`` follows the :mod:`repro.metrics.streaming`
``Mergeable`` contract so per-region checkers in separate subprocesses
can ship verdict totals across the process boundary and the parent can
fold them into exactly what one sequential checker would have counted.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.verify import InvariantChecker, InvariantCounters

count_dicts = st.dictionaries(
    st.sampled_from(["msg_sent", "access_granted", "update_committed"]),
    st.integers(0, 50),
    max_size=3,
)
counters = st.builds(InvariantCounters, count_dicts, count_dicts)


class TestMergeLaws:
    @given(a=counters, b=counters)
    def test_merge_returns_fresh_summed_instance(self, a, b):
        merged = a.merge(b)
        assert merged is not a and merged is not b
        for kind in set(a.records) | set(b.records):
            assert merged.records[kind] == (
                a.records.get(kind, 0) + b.records.get(kind, 0)
            )
        assert merged.total_violations == (
            a.total_violations + b.total_violations
        )

    @given(a=counters, b=counters, c=counters)
    def test_merge_is_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(a=counters)
    def test_fresh_instance_is_identity(self, a):
        assert a.merge(InvariantCounters()) == a
        assert InvariantCounters().merge(a) == a

    @given(a=counters, b=counters)
    def test_merge_does_not_mutate_operands(self, a, b):
        before_a = a.as_dict()
        before_b = b.as_dict()
        a.merge(b)
        assert a.as_dict() == before_a
        assert b.as_dict() == before_b

    def test_equality_and_repr(self):
        a = InvariantCounters({"msg_sent": 2}, {"te_bound": 1})
        b = InvariantCounters({"msg_sent": 2}, {"te_bound": 1})
        assert a == b
        assert a != InvariantCounters()
        assert a.__eq__(object()) is NotImplemented
        assert "records=2" in repr(a)
        assert a.as_dict() == {
            "records": {"msg_sent": 2},
            "violations": {"te_bound": 1},
        }


class TestCheckerCounters:
    def _system(self):
        from repro.core.policy import AccessPolicy
        from repro.core.system import AccessControlSystem

        return AccessControlSystem(
            n_managers=3,
            n_hosts=1,
            policy=AccessPolicy(check_quorum=2, expiry_bound=60.0),
            check_invariants=False,
            clock_drift=False,
        )

    def test_counters_track_consumed_records(self):
        system = self._system()
        checker = InvariantChecker(system)
        system.seed_grant("app", "alice")
        system.hosts[0].request_access("app", "alice")
        system.run(until=5.0)
        snapshot = checker.counters()
        assert isinstance(snapshot, InvariantCounters)
        assert snapshot.total_records > 0
        assert snapshot.total_violations == 0

    def test_sharded_counters_partition_the_sequential_stream(self):
        """Two per-half checkers over a partition of the record stream
        must merge to the single checker's totals — the property the
        region-sharded runner relies on."""
        system = self._system()
        checker = InvariantChecker(system)
        system.seed_grant("app", "alice")
        system.seed_grant("app", "bob")
        for user in ("alice", "bob"):
            system.hosts[0].request_access("app", user)
        system.run(until=5.0)
        whole = checker.counters()
        # Split by record kind: any partition must merge back exactly.
        kinds = sorted(whole.records)
        half_a = InvariantCounters(
            {k: whole.records[k] for k in kinds[::2]}
        )
        half_b = InvariantCounters(
            {k: whole.records[k] for k in kinds[1::2]}
        )
        assert half_a.merge(half_b) == InvariantCounters(whole.records)

    def test_observe_seed_range_feeds_te_oracle(self):
        """Out-of-band seed knowledge must behave exactly like a
        GRANT_SEEDED trace record: accesses by seeded users verify
        without a 'never granted' violation."""
        system = self._system()
        checker = InvariantChecker(system, raise_on_violation=False)
        checker.observe_seed_range("app", "u", 10)
        from repro.core.rights import AclEntry, Right, Version

        for manager in system.managers:
            manager.bootstrap(
                "app",
                (
                    AclEntry(user=f"u{i}", right=Right.USE, granted=True,
                             version=Version(1, ""))
                    for i in range(10)
                ),
            )
        system.hosts[0].request_access("app", "u3")
        system.run(until=5.0)
        assert checker.violations == []
        assert checker.counters().total_violations == 0
