"""Golden-trace equivalence: the refactored pipeline must replay the
pre-refactor protocol event sequences bit-for-bit.

The fixtures were recorded by driving seeded fuzz schedules through the
monolithic host/manager implementation and capturing every
protocol-level trace record (kind, source, time, payload).  Replaying
the same schedules through the current strategy-composed implementation
must yield the identical sequence — same events, same order, same
timestamps, same payloads — plus identical run statistics.  Any
behavioural drift in the refactor (a reordered send, a perturbed RNG
draw, a changed timeout) shows up here as the first diverging record.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.verify.fuzz import PROTOCOL_TRACE_KINDS, run_cell_trace
from repro.verify.schedules import Schedule

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = sorted(FIXTURES.glob("golden_trace_*.json"))


def load(path: Path) -> dict:
    with path.open() as handle:
        return json.load(handle)


class TestGoldenTraces:
    def test_fixtures_exist(self):
        assert len(GOLDEN) >= 2  # quorum and freeze variants

    @pytest.mark.parametrize(
        "fixture", GOLDEN, ids=[path.stem for path in GOLDEN]
    )
    def test_replay_is_bit_identical(self, fixture):
        golden = load(fixture)
        schedule = Schedule.from_dict(golden["schedule"])
        result, records = run_cell_trace(schedule)
        assert result.ok, result.violations
        assert result.stats == golden["result_stats"]
        expected = golden["records"]
        assert len(records) == len(expected)
        for index, (got, want) in enumerate(zip(records, expected)):
            assert got == want, (
                f"{fixture.name}: trace diverges at record {index}: "
                f"got {got!r}, want {want!r}"
            )

    def test_fixture_covers_both_strategies(self):
        kinds_by_fixture = {
            path.stem: {record["kind"] for record in load(path)["records"]}
            for path in GOLDEN
        }
        all_kinds = set().union(*kinds_by_fixture.values())
        # One fixture exercises the freeze strategy, one the quorum path.
        assert "manager_frozen" in all_kinds
        assert "update_quorum_reached" in all_kinds

    def test_capture_does_not_perturb_the_run(self):
        # Subscribing the capture hook must not consume randomness or
        # events: stats with and without capture are identical.
        from repro.verify.fuzz import run_cell

        golden = load(GOLDEN[0])
        schedule = Schedule.from_dict(golden["schedule"])
        bare = run_cell(schedule)
        traced, _records = run_cell_trace(schedule)
        assert bare.stats == traced.stats
        assert bare.ok == traced.ok

    def test_recorded_kinds_are_protocol_level(self):
        # The golden fixtures deliberately exclude network-level msg_*
        # events; the protocol vocabulary is the contract.
        for path in GOLDEN:
            for record in load(path)["records"]:
                assert record["kind"] in PROTOCOL_TRACE_KINDS


class TestGoldenTracesUnderRunPartitioned:
    """The K=1 contract of the region-sharded engine: routing a run
    through ``run_partitioned`` with no plan must be the existing
    engine, bit-for-bit — pinned against the same golden fixtures."""

    @pytest.mark.parametrize(
        "fixture", GOLDEN, ids=[path.stem for path in GOLDEN]
    )
    def test_replay_is_bit_identical(self, fixture, monkeypatch):
        from repro.core.system import AccessControlSystem

        def run_via_partitioned(self, until=None):
            stats = self.run_partitioned(None, until=until, jobs=1)
            assert stats["mode"] == "single"

        monkeypatch.setattr(AccessControlSystem, "run", run_via_partitioned)
        golden = load(fixture)
        schedule = Schedule.from_dict(golden["schedule"])
        result, records = run_cell_trace(schedule)
        assert result.ok, result.violations
        assert result.stats == golden["result_stats"]
        assert records == golden["records"]
