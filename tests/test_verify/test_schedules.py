"""Tests for schedule derivation, serialization, and well-formedness."""

from __future__ import annotations

import json

import pytest

from repro.runtime.seeds import trial_seed
from repro.verify.schedules import (
    ClockDriftSpec,
    Schedule,
    generate_schedule,
)


class TestGeneration:
    def test_deterministic(self):
        assert generate_schedule(7, 3) == generate_schedule(7, 3)

    def test_cells_differ(self):
        schedules = [generate_schedule(7, i) for i in range(20)]
        assert len({s.seed for s in schedules}) == 20

    def test_masters_differ(self):
        assert generate_schedule(1, 0) != generate_schedule(2, 0)

    def test_seed_uses_runtime_derivation(self):
        # Pinned to the parallel runtime's SHA-256 scheme so workers and
        # replays agree on what cell i contains.
        schedule = generate_schedule(5, 9)
        assert schedule.seed == trial_seed(5, 9, label="fuzz")

    @pytest.mark.parametrize("cell", range(30))
    def test_well_formed(self, cell):
        schedule = generate_schedule(123, cell)
        addresses = {f"m{i}" for i in range(schedule.n_managers)} | {
            f"h{i}" for i in range(schedule.n_hosts)
        }
        for event in schedule.partitions:
            assert 0.0 < event.start < event.end <= schedule.horizon
            assert len(event.groups) == 2
            flat = [a for group in event.groups for a in group]
            assert sorted(flat) == sorted(addresses)
        for event in schedule.crashes:
            assert 0.0 < event.at < event.recover_at <= schedule.horizon
            assert event.node.startswith("h"), "fuzz crashes target hosts"
        assert len(schedule.drift.rates) == schedule.n_hosts
        bound = schedule.drift.bound
        for rate in schedule.drift.rates:
            assert 1.0 / bound <= rate <= 1.0
        if schedule.policy.get("use_freeze"):
            assert (
                schedule.policy["inaccessibility_period"]
                < schedule.policy["expiry_bound"]
            )
        assert 1 <= schedule.policy["check_quorum"] <= schedule.n_managers

    def test_partitions_do_not_overlap(self):
        for cell in range(30):
            schedule = generate_schedule(42, cell)
            windows = sorted(
                (e.start, e.end) for e in schedule.partitions
            )
            for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
                assert prev_end <= next_start


class TestSerialization:
    def test_json_round_trip(self):
        schedule = generate_schedule(7, 0)
        assert Schedule.from_json(schedule.to_json()) == schedule

    def test_save_load(self, tmp_path):
        schedule = generate_schedule(7, 1)
        path = tmp_path / "cell1.json"
        schedule.save(str(path))
        assert Schedule.load(str(path)) == schedule

    def test_serialized_form_is_plain_json(self):
        payload = json.loads(generate_schedule(7, 2).to_json())
        assert payload["format"] == 1
        assert isinstance(payload["policy"], dict)

    def test_unknown_format_rejected(self):
        payload = generate_schedule(7, 0).to_dict()
        payload["format"] = 999
        with pytest.raises(ValueError):
            Schedule.from_dict(payload)


class TestShrinkPrimitives:
    def test_halved_drift_moves_rates_toward_one(self):
        spec = ClockDriftSpec(bound=1.1, rates=(0.92, 1.0), offsets=(3.0, 4.0))
        halved = spec.halved()
        assert halved.rates[0] == pytest.approx(0.96)
        assert halved.rates[1] == 1.0
        assert halved.offsets == spec.offsets

    def test_replace_is_structural(self):
        schedule = generate_schedule(7, 0)
        reduced = schedule.replace(partitions=())
        assert reduced.partitions == ()
        assert reduced.seed == schedule.seed
        assert schedule.partitions != ()  # original untouched

    def test_fault_count(self):
        schedule = generate_schedule(7, 0)
        assert schedule.fault_count() == len(schedule.partitions) + len(
            schedule.crashes
        )
