"""Tests for the parallel dispatch layer and result merging.

The load-bearing property throughout: for every helper, ``jobs=N``
returns exactly what ``jobs=1`` returns, for any ``N``.
"""

from __future__ import annotations

import functools
import operator
import time

import pytest

from repro.experiments.validation import simulate_cell
from repro.metrics.streaming import StreamingSummary
from repro.runtime.merge import (
    MergeError,
    combine_partials,
    merge_counts,
    merge_ordered,
)
from repro.runtime.pool import (
    _chunked,
    available_cpus,
    last_ipc_bytes,
    last_run_mode,
    resolve_jobs,
    run_parallel,
    run_replications,
    run_trials,
)
from repro.runtime.seeds import trial_seed


# Module-level workers: picklable under the fork start method.
def _square(x):
    return x * x


def _seeded_trial(trial_index, seed):
    # A toy trial whose result depends on both the index and the
    # derived seed, so misrouted seeds or indexes are visible.
    return (trial_index, seed % 1_000_003)


def _boom(x):
    raise RuntimeError(f"boom {x}")


def _config_cell(config, trials, seed):
    return (config, trials, seed)


def _token(x):
    return f"<{x}>"


def _wide_row(x):
    # A deliberately bulky per-task result so the reduce path's IPC
    # saving is visible in pickled bytes.
    return [(x, float(x))] * 64


def _summary_of(trial_index, seed):
    summary = StreamingSummary(seed=seed, capacity=64)
    summary.add(float(trial_index))
    summary.add(float(trial_index) * 0.5)
    return summary


def _merge_summaries(a, b):
    return a.merge(b)


def _keep_first(a, _b):
    return a


def _sleep_or_boom(x):
    if x == 0:
        raise RuntimeError(f"boom {x}")
    time.sleep(4.0)
    return x


class TestResolveJobs:
    def test_explicit_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_all_cpus(self):
        assert resolve_jobs(None) == available_cpus()
        assert resolve_jobs(0) == available_cpus()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestChunking:
    def test_covers_all_tasks_contiguously(self):
        tasks = [(i,) for i in range(10)]
        chunks = _chunked(tasks, jobs=2, chunk_size=3)
        rebuilt = []
        for start, chunk in chunks:
            assert tasks[start:start + len(chunk)] == list(chunk)
            rebuilt.extend(chunk)
        assert rebuilt == tasks

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            _chunked([(1,)], jobs=1, chunk_size=0)


class TestRunParallel:
    def test_inline_matches_loop(self):
        tasks = [(i,) for i in range(20)]
        assert run_parallel(_square, tasks, jobs=1) == [i * i for i in range(20)]

    def test_pool_matches_inline(self):
        tasks = [(i,) for i in range(37)]
        assert run_parallel(_square, tasks, jobs=4) == run_parallel(
            _square, tasks, jobs=1
        )

    def test_empty_tasks(self):
        assert run_parallel(_square, [], jobs=4) == []

    def test_single_task_stays_inline(self):
        assert run_parallel(_square, [(5,)], jobs=8) == [25]

    def test_worker_exception_propagates_inline(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_parallel(_boom, [(1,)], jobs=1)

    def test_worker_exception_propagates_from_pool(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_parallel(_boom, [(i,) for i in range(8)], jobs=2)

    def test_first_failure_propagates_without_draining(self):
        # Fail-fast satellite: the failing chunk's exception must reach
        # the caller promptly, not after every surviving chunk finished
        # its 4-second sleep (draining 7 sleepers over 2 workers would
        # take ~16s).
        started = time.monotonic()
        with pytest.raises(RuntimeError, match="boom 0"):
            run_parallel(
                _sleep_or_boom, [(i,) for i in range(8)], jobs=2, chunk_size=1
            )
        assert time.monotonic() - started < 3.0


class TestReducePath:
    """``reduce=`` folds in-worker; pooled folds equal sequential ones."""

    def test_inline_fold_matches_functools_reduce(self):
        tasks = [(i,) for i in range(20)]
        expected = functools.reduce(operator.add, [i * i for i in range(20)])
        assert run_parallel(_square, tasks, jobs=1, reduce=operator.add) == expected

    def test_pool_fold_matches_inline(self):
        tasks = [(i,) for i in range(37)]
        assert run_parallel(
            _square, tasks, jobs=4, reduce=operator.add
        ) == run_parallel(_square, tasks, jobs=1, reduce=operator.add)

    def test_ordered_noncommutative_reduce_survives_chunking(self):
        # String concatenation is associative but not commutative, so a
        # chunk folded out of order or merged in completion order would
        # scramble the result.
        tasks = [(i,) for i in range(23)]
        expected = "".join(_token(i) for i in range(23))
        assert run_parallel(_token, tasks, jobs=1, reduce=operator.add) == expected
        assert (
            run_parallel(_token, tasks, jobs=4, chunk_size=3, reduce=operator.add)
            == expected
        )

    def test_initial_applied_exactly_once(self):
        tasks = [(i,) for i in range(16)]
        expected = 100 + sum(i * i for i in range(16))
        for jobs in (1, 4):
            assert (
                run_parallel(
                    _square, tasks, jobs=jobs, reduce=operator.add, initial=100
                )
                == expected
            )

    def test_empty_tasks_return_initial(self):
        assert run_parallel(_square, [], jobs=4, reduce=operator.add, initial=7) == 7

    def test_empty_tasks_without_initial_raise(self):
        with pytest.raises(ValueError, match="initial"):
            run_parallel(_square, [], jobs=1, reduce=operator.add)

    def test_mergeable_accumulators_jobs_invariant(self):
        sequential = run_replications(
            _summary_of, trials=24, seed=9, jobs=1, reduce=_merge_summaries
        )
        pooled = run_replications(
            _summary_of, trials=24, seed=9, jobs=4, reduce=_merge_summaries
        )
        assert pooled == sequential
        assert pooled.summary() == sequential.summary()

    def test_run_trials_reduce_jobs_invariant(self):
        configs = list(range(11))
        assert run_trials(
            _config_cell, configs, 5, 1, jobs=4, reduce=_keep_first
        ) == run_trials(_config_cell, configs, 5, 1, jobs=1, reduce=_keep_first)


class TestIpcMeasurement:
    def test_unmeasured_call_reports_none(self):
        run_parallel(_square, [(1,), (2,)], jobs=1)
        assert last_ipc_bytes() is None

    def test_inline_measurement_simulates_chunking(self):
        run_parallel(_wide_row, [(i,) for i in range(16)], jobs=2, measure_ipc=True)
        assert last_ipc_bytes() > 0

    def test_reduce_shrinks_payload(self):
        tasks = [(i,) for i in range(32)]
        for jobs in (1, 4):
            run_parallel(_wide_row, tasks, jobs=jobs, measure_ipc=True)
            raw = last_ipc_bytes()
            run_parallel(
                _wide_row,
                tasks,
                jobs=jobs,
                reduce=operator.add,
                measure_ipc=True,
            )
            reduced = last_ipc_bytes()
            # Concatenating rows keeps all elements but drops the
            # per-task framing; a genuinely mergeable accumulator does
            # far better (see the bench suite's sweep_reduce cell).
            assert reduced < raw

    def test_pool_and_inline_measure_comparably(self):
        tasks = [(i,) for i in range(32)]
        run_parallel(_wide_row, tasks, jobs=1, chunk_size=4, measure_ipc=True)
        inline = last_ipc_bytes()
        run_parallel(_wide_row, tasks, jobs=4, chunk_size=4, measure_ipc=True)
        pooled = last_ipc_bytes()
        assert inline == pooled


class TestRunMode:
    def test_single_job_is_inline_and_silent(self, recwarn):
        run_parallel(_square, [(1,), (2,)], jobs=1)
        assert last_run_mode() == "inline"
        assert not [w for w in recwarn if w.category is RuntimeWarning]

    def test_single_task_is_inline_and_silent(self, recwarn):
        run_parallel(_square, [(1,)], jobs=4)
        assert last_run_mode() == "inline"
        assert not [w for w in recwarn if w.category is RuntimeWarning]

    def test_pooled_run_records_pool_mode(self):
        run_parallel(_square, [(i,) for i in range(8)], jobs=2)
        assert last_run_mode() == "pool"

    def test_fork_unavailable_warns_and_records_fallback(self, monkeypatch):
        from repro.runtime import pool

        monkeypatch.setattr(pool, "_fork_available", lambda: False)
        tasks = [(i,) for i in range(6)]
        with pytest.warns(RuntimeWarning, match="falling back to inline"):
            results = run_parallel(_square, tasks, jobs=4)
        assert results == [i * i for i in range(6)]
        assert last_run_mode() == "inline-fallback"

    def test_pool_creation_failure_warns_and_records_fallback(
        self, monkeypatch
    ):
        from repro.runtime import pool

        def denied(*args, **kwargs):
            raise PermissionError("no subprocesses here")

        monkeypatch.setattr(pool, "ProcessPoolExecutor", denied)
        tasks = [(i,) for i in range(6)]
        with pytest.warns(RuntimeWarning, match="pool creation failed"):
            results = run_parallel(_square, tasks, jobs=4)
        assert results == [i * i for i in range(6)]
        assert last_run_mode() == "inline-fallback"

    def test_fallback_warning_names_exception_class(self, monkeypatch):
        from repro.runtime import pool

        def denied(*args, **kwargs):
            raise PermissionError("no subprocesses here")

        monkeypatch.setattr(pool, "ProcessPoolExecutor", denied)
        with pytest.warns(
            RuntimeWarning, match=r"PermissionError: no subprocesses here"
        ):
            run_parallel(_square, [(i,) for i in range(4)], jobs=4)


class TestRunTrials:
    def test_passes_config_trials_seed(self):
        configs = ["a", "b", "c"]
        assert run_trials(_config_cell, configs, 10, 99, jobs=1) == [
            ("a", 10, 99), ("b", 10, 99), ("c", 10, 99)
        ]

    def test_jobs_invariance(self):
        configs = list(range(9))
        assert run_trials(_config_cell, configs, 5, 1, jobs=4) == run_trials(
            _config_cell, configs, 5, 1, jobs=1
        )


class TestRunReplications:
    def test_trial_gets_its_derived_seed(self):
        results = run_replications(_seeded_trial, trials=6, seed=3, jobs=1)
        assert results == [
            (i, trial_seed(3, i) % 1_000_003) for i in range(6)
        ]

    def test_same_seed_and_index_identical_across_jobs_1_and_4(self):
        sequential = run_replications(_seeded_trial, trials=16, seed=5, jobs=1)
        parallel = run_replications(_seeded_trial, trials=16, seed=5, jobs=4)
        assert parallel == sequential


class TestProtocolLevelInvariance:
    """The real experiment path: full protocol cells through the pool."""

    def test_validation_cells_identical_across_jobs_1_and_4(self):
        configs = [(3, 1, 0.1), (3, 2, 0.1)]
        sequential = run_trials(simulate_cell, configs, 25, 0, jobs=1)
        parallel = run_trials(simulate_cell, configs, 25, 0, jobs=4)
        assert parallel == sequential

    def test_validation_experiment_renders_byte_identical(self):
        from repro.experiments import validation

        one = validation.run(m=3, cs=(1, 3), pis=(0.1,), trials=20, seed=0, jobs=1)
        four = validation.run(m=3, cs=(1, 3), pis=(0.1,), trials=20, seed=0, jobs=4)
        assert four.render() == one.render()


class TestMergeOrdered:
    def test_restores_submission_order(self):
        assert merge_ordered([(2, "c"), (0, "a"), (1, "b")]) == ["a", "b", "c"]

    def test_duplicate_index_raises(self):
        with pytest.raises(MergeError, match="duplicate"):
            merge_ordered([(0, "a"), (0, "b")])

    def test_missing_index_raises_when_expected_given(self):
        with pytest.raises(MergeError, match="missing"):
            merge_ordered([(0, "a"), (2, "c")], expected=3)

    def test_unexpected_index_raises(self):
        with pytest.raises(MergeError, match="unexpected"):
            merge_ordered([(0, "a"), (5, "x")], expected=2)

    def test_unorderable_values_are_fine(self):
        # Sorting must key on the index alone, never compare values.
        values = [(1, {"b": 2}), (0, {"a": 1})]
        assert merge_ordered(values, expected=2) == [{"a": 1}, {"b": 2}]


class TestCombinePartials:
    def test_folds_in_task_order(self):
        chunks = [(3, 2, "<3><4>"), (0, 3, "<0><1><2>")]
        assert (
            combine_partials(chunks, operator.add, expected=5) == "<0><1><2><3><4>"
        )

    def test_initial_seeds_the_fold(self):
        chunks = [(0, 2, 5), (2, 2, 7)]
        assert combine_partials(chunks, operator.add, expected=4, initial=100) == 112

    def test_gap_raises(self):
        with pytest.raises(MergeError, match="missing chunk coverage"):
            combine_partials([(0, 2, 1), (3, 1, 2)], operator.add, expected=4)

    def test_overlap_raises(self):
        with pytest.raises(MergeError, match="overlapping chunk coverage"):
            combine_partials([(0, 3, 1), (2, 2, 2)], operator.add, expected=4)

    def test_short_coverage_raises(self):
        with pytest.raises(MergeError, match="were submitted"):
            combine_partials([(0, 2, 1)], operator.add, expected=5)

    def test_empty_count_raises(self):
        with pytest.raises(MergeError, match="count 0"):
            combine_partials([(0, 0, 1)], operator.add, expected=0)

    def test_no_chunks_returns_initial_or_raises(self):
        assert combine_partials([], operator.add, expected=0, initial=9) == 9
        with pytest.raises(MergeError, match="no chunks"):
            combine_partials([], operator.add, expected=0)


class TestMergeCounts:
    def test_elementwise_sum(self):
        assert merge_counts([(1, 10), (2, 10), (3, 10)]) == (6, 30)

    def test_order_independent(self):
        assert merge_counts([(1, 2), (3, 4)]) == merge_counts([(3, 4), (1, 2)])

    def test_width_mismatch_raises(self):
        with pytest.raises(MergeError, match="width"):
            merge_counts([(1, 2), (1, 2, 3)])

    def test_empty(self):
        assert merge_counts([]) == ()


class TestAvailableCpus:
    """``available_cpus`` must reflect the CPUs this process may *use*
    (the affinity mask a cgroup-limited CI runner pins), not the host's
    raw core count — otherwise ``--jobs 0``/``--sim-jobs 0`` defaults
    oversubscribe the container."""

    def test_respects_affinity_mask(self, monkeypatch):
        import os as os_module

        import repro.runtime.pool as pool_module

        monkeypatch.setattr(
            os_module, "sched_getaffinity", lambda pid: {0, 2, 5},
            raising=False,
        )
        monkeypatch.setattr(os_module, "cpu_count", lambda: 64)
        assert pool_module.available_cpus() == 3

    def test_empty_mask_clamps_to_one(self, monkeypatch):
        import os as os_module

        monkeypatch.setattr(
            os_module, "sched_getaffinity", lambda pid: set(), raising=False
        )
        assert available_cpus() == 1

    def test_falls_back_to_cpu_count(self, monkeypatch):
        import os as os_module

        def unavailable(pid):
            raise AttributeError("no sched_getaffinity on this platform")

        monkeypatch.setattr(
            os_module, "sched_getaffinity", unavailable, raising=False
        )
        monkeypatch.setattr(os_module, "cpu_count", lambda: 7)
        assert available_cpus() == 7
