"""Property-based tests for the deterministic runtime primitives.

The parallel runtime's contract is "same inputs, same outputs, any
worker count, any machine"; these properties pin the two pieces that
contract rests on: injective, platform-stable seed derivation and
permutation-invariant result merging.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.merge import merge_counts, merge_ordered
from repro.runtime.seeds import seed_sequence, trial_seed

masters = st.integers(min_value=0, max_value=2**63 - 1)
indexes = st.integers(min_value=0, max_value=10_000)
labels = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=12,
)


class TestSeedProperties:
    @given(master=masters, i=indexes, j=indexes, a=labels, b=labels)
    @settings(max_examples=200)
    def test_distinct_labels_or_indexes_give_distinct_seeds(
        self, master, i, j, a, b
    ):
        # f"{label}[{index}]" parses uniquely (the final bracket group
        # is the index), so different (label, index) pairs can never
        # alias to the same derivation string.
        if (i, a) == (j, b):
            assert trial_seed(master, i, label=a) == trial_seed(
                master, j, label=b
            )
        else:
            assert trial_seed(master, i, label=a) != trial_seed(
                master, j, label=b
            )

    @given(master=masters, i=indexes, label=labels)
    @settings(max_examples=100)
    def test_pure_function_of_inputs(self, master, i, label):
        assert trial_seed(master, i, label=label) == trial_seed(
            master, i, label=label
        )

    @given(master=masters, i=indexes)
    @settings(max_examples=100)
    def test_seeds_are_64_bit(self, master, i):
        seed = trial_seed(master, i)
        assert 0 <= seed < 2**64

    def test_platform_stable_values(self):
        # SHA-256-backed: these literals must hold on every Python
        # version, OS, and architecture.  A change here would silently
        # re-randomise every recorded experiment and fuzz schedule.
        assert trial_seed(0, 0) == 1407874983961304770
        assert trial_seed(7, 3) == 18368835593159575832
        assert trial_seed(7, 3, label="fuzz") == 7290522525737761144

    @given(master=masters, n=st.integers(0, 50))
    @settings(max_examples=50)
    def test_sequence_matches_pointwise_derivation(self, master, n):
        assert seed_sequence(master, n) == [
            trial_seed(master, i) for i in range(n)
        ]


class TestMergeProperties:
    @given(
        values=st.lists(st.integers(), min_size=0, max_size=40),
        data=st.data(),
    )
    @settings(max_examples=200)
    def test_merge_ordered_is_permutation_invariant(self, values, data):
        indexed = list(enumerate(values))
        shuffled = data.draw(st.permutations(indexed))
        assert merge_ordered(shuffled, expected=len(values)) == values

    @given(
        rows=st.lists(
            st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
            min_size=1,
            max_size=20,
        ),
        data=st.data(),
    )
    @settings(max_examples=100)
    def test_merge_counts_is_permutation_invariant(self, rows, data):
        shuffled = data.draw(st.permutations(rows))
        assert merge_counts(shuffled) == merge_counts(rows)
        total = merge_counts(rows)
        assert total[0] == sum(row[0] for row in rows)
        assert total[1] == sum(row[1] for row in rows)
