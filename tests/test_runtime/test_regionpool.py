"""Tests for the forked region-worker layer (runtime/regionpool.py).

The load-bearing property, inherited from the rest of the runtime
package: ``jobs=N`` returns exactly what ``jobs=1`` returns, for any
``N`` — here extended to *within* one simulation run.
"""

from __future__ import annotations

import pytest

from repro.runtime.pool import _fork_available, default_sim_jobs
from repro.runtime.regionpool import last_partitioned_mode, run_partitioned
from repro.sim.engine import Environment, SimulationError
from repro.sim.node import Node
from repro.sim.regions import Region, RegionPlan, RegionalLatency, RegionalNetwork
from repro.sim.trace import Tracer

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)


class _Echo(Node):
    def __init__(self, address: str, peer: str, hops: int):
        super().__init__(address)
        self.peer = peer
        self.hops = hops
        self.log = []

    def kick(self) -> None:
        self.send(self.peer, ("ping", self.hops))

    def handle_message(self, src, message) -> None:
        self.log.append((self.env.now, src, message))
        kind, hops = message
        if hops > 0:
            self.send(src, ("pong" if kind == "ping" else "ping", hops - 1))


def _ring(n_regions: int, hops: int = 12):
    names = [f"r{i}n" for i in range(n_regions)]
    plan = RegionPlan.by_groups([[name] for name in names])
    latency = RegionalLatency(plan, intra=0.01, inter=0.08)
    regions, nodes = [], []
    for i, name in enumerate(names):
        env = Environment()
        network = RegionalNetwork(
            env, i, plan, latency=latency, tracer=Tracer(env)
        )
        node = _Echo(name, names[(i + 1) % n_regions], hops)
        network.register(node)
        region = Region(i, env, network, payload=node)
        regions.append(region)
        nodes.append(node)
    plan.bind(regions)
    nodes[0].kick()
    return plan, regions, nodes


def _collect_log(region: Region):
    return list(region.payload.log)


class TestCoupledPath:
    def test_jobs_one_uses_coupled_driver(self):
        plan, regions, nodes = _ring(2)
        stats = run_partitioned(plan, until=5.0, jobs=1, collect=_collect_log)
        assert stats["mode"] == "coupled"
        assert last_partitioned_mode() == "coupled"
        assert set(stats["collected"]) == {0, 1}
        assert [region.env.now for region in regions] == [5.0, 5.0]

    def test_unbound_plan_raises(self):
        plan = RegionPlan(2, {"a": 0, "b": 1})
        with pytest.raises(SimulationError, match="not bound"):
            run_partitioned(plan, until=1.0)

    @needs_fork
    def test_open_ended_multiworker_falls_back(self):
        plan, regions, nodes = _ring(2, hops=4)
        with pytest.warns(RuntimeWarning, match="termination"):
            stats = run_partitioned(plan, until=None, jobs=2)
        assert stats["mode"] == "coupled-fallback"
        assert last_partitioned_mode() == "coupled-fallback"
        assert sum(len(node.log) for node in nodes) == 5


@needs_fork
class TestForkedPath:
    @pytest.mark.parametrize("n_regions,jobs", [(2, 2), (3, 2), (3, 3)])
    def test_forked_matches_coupled(self, n_regions, jobs):
        reference_plan, _, reference_nodes = _ring(n_regions)
        run_partitioned(reference_plan, until=5.0, jobs=1)
        reference_logs = [node.log for node in reference_nodes]

        plan, regions, nodes = _ring(n_regions)
        stats = run_partitioned(
            plan, until=5.0, jobs=jobs, collect=_collect_log
        )
        assert stats["mode"] == "forked"
        assert stats["jobs"] == jobs
        # Post-run node state lives in the workers; observe it through
        # the collect hook, gathered inside each owning process.
        logs = [stats["collected"][i] for i in range(n_regions)]
        assert logs == reference_logs
        assert stats["envelopes"] > 0

    def test_jobs_clamped_to_regions(self):
        plan, regions, nodes = _ring(2)
        stats = run_partitioned(plan, until=5.0, jobs=8, collect=_collect_log)
        assert stats["jobs"] == 2

    def test_worker_error_propagates(self):
        plan, regions, nodes = _ring(2)

        def explode(region: Region):
            raise RuntimeError("collector boom")

        with pytest.raises(SimulationError, match="collector boom"):
            run_partitioned(plan, until=5.0, jobs=2, collect=explode)


class TestDefaultSimJobs:
    def test_unset_means_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_JOBS", raising=False)
        assert default_sim_jobs() == 1

    def test_env_value_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_JOBS", "3")
        assert default_sim_jobs() == 3

    def test_zero_means_all_cpus(self, monkeypatch):
        from repro.runtime.pool import available_cpus

        monkeypatch.setenv("REPRO_SIM_JOBS", "0")
        assert default_sim_jobs() == available_cpus()

    def test_garbage_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_JOBS", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_SIM_JOBS"):
            assert default_sim_jobs() == 1
