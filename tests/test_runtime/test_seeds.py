"""Tests for deterministic per-trial seed derivation."""

from __future__ import annotations

import pytest

from repro.runtime.seeds import seed_sequence, trial_seed, trial_streams
from repro.sim.rng import derive_seed


class TestTrialSeed:
    def test_deterministic(self):
        assert trial_seed(42, 7) == trial_seed(42, 7)

    def test_distinct_per_index(self):
        seeds = {trial_seed(0, i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_distinct_per_master(self):
        assert trial_seed(1, 0) != trial_seed(2, 0)

    def test_distinct_per_label(self):
        assert trial_seed(0, 0, label="pa") != trial_seed(0, 0, label="ps")

    def test_index_not_confusable_with_master(self):
        # (seed=1, trial=10) and (seed=11, trial=0)-style collisions
        # cannot happen because the label string brackets the index.
        assert trial_seed(1, 10) != trial_seed(11, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            trial_seed(0, -1)

    def test_matches_sha_derivation(self):
        # The scheme is pinned: changing it would silently re-randomise
        # every recorded experiment.
        assert trial_seed(5, 3) == derive_seed(5, "trial[3]")

    def test_known_value_stable_across_processes(self):
        # SHA-256 backed, so this literal must hold on any machine.
        assert trial_seed(0, 0) == derive_seed(0, "trial[0]")
        assert trial_seed(0, 0) == trial_seed(0, 0)


class TestTrialStreams:
    def test_family_seeded_by_trial_seed(self):
        streams = trial_streams(9, 4)
        assert streams.master_seed == trial_seed(9, 4)

    def test_independent_trials_draw_independently(self):
        a = trial_streams(0, 0).stream("network").random()
        b = trial_streams(0, 1).stream("network").random()
        assert a != b

    def test_same_trial_reproduces_draws(self):
        a = [trial_streams(3, 2).stream("x").random() for _ in range(2)]
        assert a[0] == a[1]


class TestSeedSequence:
    def test_matches_individual_derivation(self):
        assert seed_sequence(7, 5) == [trial_seed(7, i) for i in range(5)]

    def test_empty(self):
        assert seed_sequence(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            seed_sequence(0, -1)
