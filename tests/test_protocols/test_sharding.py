"""Consistent-hash ring and shard-router properties.

The three properties ISSUE 8 pins with Hypothesis:

* **balance** — keys spread across shards within a bound;
* **monotone remapping** — adding/removing a shard only moves keys
  to/from that shard, never between surviving shards;
* **determinism** — placement is a pure content-hash function,
  identical across processes and pool workers (no ``PYTHONHASHSEED``
  dependence).
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.sharding import HashRing, ShardRouter

#: Printable object names like the ones systems actually hash.
names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=24,
)


class TestHashRingBasics:
    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for(f"app{i}") for i in range(50)} == {0}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)

    def test_salt_decorrelates_rings(self):
        a = HashRing(8, salt="a")
        b = HashRing(8, salt="b")
        keys = [f"app{i}" for i in range(200)]
        moved = sum(a.shard_for(k) != b.shard_for(k) for k in keys)
        assert moved > 100  # different salts place most keys differently


class TestBalance:
    @settings(max_examples=25, deadline=None)
    @given(n_shards=st.integers(min_value=2, max_value=8))
    def test_load_within_bound(self, n_shards):
        ring = HashRing(n_shards)
        keys = [f"object-{i}" for i in range(2000)]
        loads = [0] * n_shards
        for key in keys:
            loads[ring.shard_for(key)] += 1
        mean = len(keys) / n_shards
        assert min(loads) > 0
        # 64 vnodes keeps max/mean comfortably under 2 at K<=8; assert
        # the documented bound with margin so the test is not brittle.
        assert max(loads) <= 2.0 * mean


class TestMonotoneRemapping:
    @settings(max_examples=25, deadline=None)
    @given(
        n_shards=st.integers(min_value=1, max_value=7),
        keys=st.lists(names, min_size=1, max_size=60, unique=True),
    )
    def test_adding_a_shard_only_moves_keys_to_it(self, n_shards, keys):
        before = HashRing(n_shards)
        after = before.with_shards(n_shards + 1)
        for key in keys:
            old, new = before.shard_for(key), after.shard_for(key)
            assert new == old or new == n_shards

    @settings(max_examples=25, deadline=None)
    @given(
        n_shards=st.integers(min_value=2, max_value=8),
        keys=st.lists(names, min_size=1, max_size=60, unique=True),
    )
    def test_removing_a_shard_only_moves_its_keys(self, n_shards, keys):
        before = HashRing(n_shards)
        after = before.with_shards(n_shards - 1)
        for key in keys:
            old, new = before.shard_for(key), after.shard_for(key)
            if old != n_shards - 1:  # key not on the removed shard
                assert new == old


def _shard_worker(args):
    n_shards, key = args
    return HashRing(n_shards).shard_for(key)


class TestDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(key=names, n_shards=st.integers(min_value=1, max_value=16))
    def test_rebuilt_ring_places_identically(self, key, n_shards):
        assert HashRing(n_shards).shard_for(key) == HashRing(
            n_shards
        ).shard_for(key)

    def test_identical_across_interpreter_hash_seeds(self):
        # blake2b placement must not depend on PYTHONHASHSEED.  Run a
        # fresh interpreter with a different hash seed and compare.
        keys = [f"app{i}" for i in range(64)] + ["stocks", "news", "mail"]
        local = [HashRing(5).shard_for(key) for key in keys]
        code = (
            "import sys, json\n"
            "from repro.protocols.sharding import HashRing\n"
            "keys = json.loads(sys.argv[1])\n"
            "print(json.dumps([HashRing(5).shard_for(k) for k in keys]))\n"
        )
        import json

        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", code, json.dumps(keys)],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            check=True,
        )
        assert json.loads(result.stdout) == local

    def test_identical_across_pool_workers(self):
        keys = [(7, f"object-{i}") for i in range(40)]
        local = [_shard_worker(item) for item in keys]
        with multiprocessing.get_context("spawn").Pool(2) as pool:
            remote = pool.map(_shard_worker, keys)
        assert remote == local


class TestShardRouter:
    def test_routes_to_declared_groups(self):
        groups = [("s0m0", "s0m1"), ("s1m0", "s1m1"), ("s2m0", "s2m1")]
        router = ShardRouter(groups)
        for name in ("app", "stocks", "news", "mail", "calendar"):
            shard = router.shard_of(name)
            assert router.group_for(name) == groups[shard]

    def test_router_matches_ring(self):
        groups = [(f"s{g}m0",) for g in range(4)]
        router = ShardRouter(groups)
        ring = HashRing(4)
        for i in range(100):
            assert router.shard_of(f"app{i}") == ring.shard_for(f"app{i}")

    def test_memo_is_stable(self):
        router = ShardRouter([("a",), ("b",)])
        first = router.shard_of("app")
        assert all(router.shard_of("app") == first for _ in range(5))

    def test_rejects_empty_configuration(self):
        with pytest.raises(ValueError):
            ShardRouter([])
        with pytest.raises(ValueError):
            ShardRouter([("m0",), ()])
