"""Regression guard: the public API of the node shells is frozen.

The protocol-strategy refactor must not change how callers construct
hosts and managers or invoke the paper's operations.  These tests pin
the public names and their exact signatures; if a refactor changes
either, this fails before any downstream experiment does.
"""

from __future__ import annotations

import inspect

from repro.core.host import AccessControlHost, AccessDecision, DecisionReason
from repro.core.manager import AccessControlManager, UpdateHandle
from repro.core.rights import Right


def params(func):
    return list(inspect.signature(func).parameters)


class TestHostSurface:
    def test_constructor_signature(self):
        assert params(AccessControlHost.__init__) == [
            "self", "address", "policy", "managers", "name_service",
            "clock", "manager_authenticator", "interner", "shard_router",
        ]

    def test_check_access_signature(self):
        signature = inspect.signature(AccessControlHost.check_access)
        assert list(signature.parameters) == [
            "self", "application", "user", "right"
        ]
        assert signature.parameters["right"].default is Right.USE

    def test_request_access_signature(self):
        assert params(AccessControlHost.request_access) == [
            "self", "application", "user", "right"
        ]

    def test_configuration_methods_exist(self):
        for name in ("policy_for", "set_policy", "set_managers", "cache_for"):
            assert callable(getattr(AccessControlHost, name))

    def test_check_access_is_a_generator(self):
        assert inspect.isgeneratorfunction(AccessControlHost.check_access)

    def test_decision_fields(self):
        fields = AccessDecision.__dataclass_fields__
        assert list(fields) == [
            "application", "user", "right", "allowed", "reason",
            "attempts", "responses", "latency",
        ]

    def test_decision_reasons_frozen(self):
        assert {
            name: value
            for name, value in vars(DecisionReason).items()
            if not name.startswith("_")
        } == {
            "CACHE": "cache",
            "VERIFIED": "verified",
            "DENIED": "denied",
            "DENY_CACHED": "deny_cache",
            "DEFAULT_ALLOW": "default_allow",
            "EXHAUSTED": "exhausted",
            "HOST_CRASHED": "host_crashed",
            "NO_MANAGERS": "no_managers",
        }


class TestManagerSurface:
    def test_constructor_signature(self):
        assert params(AccessControlManager.__init__) == [
            "self", "address", "policy", "principal", "store",
            "admin_authenticator", "interner",
        ]

    def test_add_signature(self):
        signature = inspect.signature(AccessControlManager.add)
        assert list(signature.parameters) == [
            "self", "application", "user", "right"
        ]
        assert signature.parameters["right"].default is Right.USE

    def test_revoke_signature(self):
        assert params(AccessControlManager.revoke) == [
            "self", "application", "user", "right"
        ]

    def test_operations_return_update_handles(self):
        assert set(UpdateHandle.__dataclass_fields__) == {
            "update", "quorum", "complete"
        }

    def test_configuration_methods_exist(self):
        for name in (
            "manage", "policy_for", "set_policy", "applications", "acl",
            "manager_set_size", "bootstrap",
        ):
            assert callable(getattr(AccessControlManager, name))
