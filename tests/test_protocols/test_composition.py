"""Tests for the strategy layer: selection, combiners, and composing a
new protocol variant (weighted voting) without touching the host."""

from __future__ import annotations

import pytest

from repro.core.host import AccessControlHost, DecisionReason
from repro.core.manager import AccessControlManager
from repro.core.messages import QueryResponse, Verdict
from repro.core.policy import AccessPolicy, ExhaustedAction, QueryStrategy
from repro.core.rights import AclEntry, Right, Version
from repro.protocols import (
    ByzantineVouchCombiner,
    FreezeStrategy,
    HighestVersionCombiner,
    ParallelPlanner,
    QuorumStrategy,
    SequentialPlanner,
    WeightedVoteCombiner,
    combiner_for,
    dissemination_strategy_for,
    planner_for,
)
from repro.sim.clock import LocalClock
from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.trace import Tracer

APP = "app"


def response(manager, verdict=Verdict.GRANT, counter=1, origin="m0"):
    return QueryResponse(
        query_id=1, application=APP, user="u", right=Right.USE,
        verdict=verdict, te=10.0, version=Version(counter, origin),
        manager=manager,
    )


class TestStrategySelection:
    def test_planner_follows_query_strategy(self):
        assert isinstance(
            planner_for(AccessPolicy(query_strategy=QueryStrategy.PARALLEL)),
            ParallelPlanner,
        )
        assert isinstance(
            planner_for(AccessPolicy(query_strategy=QueryStrategy.SEQUENTIAL)),
            SequentialPlanner,
        )

    def test_combiner_follows_byzantine_f(self):
        assert isinstance(combiner_for(AccessPolicy()), HighestVersionCombiner)
        byz = combiner_for(AccessPolicy(byzantine_f=1, check_quorum=3))
        assert isinstance(byz, ByzantineVouchCombiner)
        assert byz.f == 1

    def test_dissemination_follows_use_freeze(self):
        assert isinstance(
            dissemination_strategy_for(AccessPolicy()), QuorumStrategy
        )
        assert isinstance(
            dissemination_strategy_for(
                AccessPolicy(use_freeze=True, inaccessibility_period=30.0)
            ),
            FreezeStrategy,
        )

    def test_quorum_needed_mirrors_policy(self):
        policy = AccessPolicy(check_quorum=2)
        assert QuorumStrategy().quorum_needed(policy, 5) == 4  # M - C + 1
        frozen = AccessPolicy(use_freeze=True, inaccessibility_period=30.0)
        assert FreezeStrategy().quorum_needed(frozen, 5) == 5  # all


class TestCombiners:
    def test_highest_version_wins(self):
        combiner = HighestVersionCombiner()
        picked = combiner.combine(
            [response("m0", counter=1), response("m1", counter=7)], required=2
        )
        assert picked.version.counter == 7

    def test_short_round_is_indecisive(self):
        assert HighestVersionCombiner().combine(
            [response("m0")], required=2
        ) is None

    def test_byzantine_needs_f_plus_one_vouchers(self):
        combiner = ByzantineVouchCombiner(f=1)
        lone_lie = [response("m0", counter=9), response("m1", counter=1),
                    response("m2", counter=1)]
        picked = combiner.combine(lone_lie, required=3)
        assert picked.version.counter == 1  # the vouched pair, not the lie

    def test_byzantine_rejects_f_below_one(self):
        with pytest.raises(ValueError):
            ByzantineVouchCombiner(f=0)

    def test_weighted_validation(self):
        with pytest.raises(ValueError):
            WeightedVoteCombiner({"m0": 1.0}, check_threshold=0)
        with pytest.raises(ValueError):
            WeightedVoteCombiner({"m0": -1.0}, check_threshold=1)
        with pytest.raises(ValueError):
            WeightedVoteCombiner({"m0": 1.0}, check_threshold=2.0)

    def test_weighted_votes_decide(self):
        combiner = WeightedVoteCombiner(
            {"m0": 2.0, "m1": 2.0, "m2": 1.0}, check_threshold=4.0
        )
        # m2 alone (weight 1) cannot decide...
        assert combiner.combine([response("m2")], required=1) is None
        assert not combiner.round_complete([response("m2")], required=1)
        # ...but the two heavy managers agreeing carry 4 votes.
        heavy = [response("m0"), response("m1")]
        assert combiner.round_complete(heavy, required=3)
        assert combiner.combine(heavy, required=3) is not None

    def test_weighted_votes_split_by_verdict_and_version(self):
        combiner = WeightedVoteCombiner(
            {"m0": 2.0, "m1": 2.0}, check_threshold=4.0
        )
        split = [response("m0", verdict=Verdict.GRANT),
                 response("m1", verdict=Verdict.DENY)]
        assert combiner.combine(split, required=2) is None  # 2 + 2, no pair


class WeightedHarness:
    """A stock host composed with a WeightedVoteCombiner — the new
    variant must be pure composition, no host subclass involved."""

    def __init__(self, weights, check_threshold, n_managers=3):
        self.env = Environment()
        self.tracer = Tracer(self.env, keep_log=True)
        self.network = Network(
            self.env, latency=FixedLatency(0.05), tracer=self.tracer
        )
        self.manager_addrs = tuple(f"m{i}" for i in range(n_managers))
        policy = AccessPolicy(
            check_quorum=n_managers,
            expiry_bound=100.0,
            query_timeout=1.0,
            max_attempts=1,
            exhausted_action=ExhaustedAction.DENY,
            cache_cleanup_interval=None,
        )
        self.managers = []
        for addr in self.manager_addrs:
            manager = AccessControlManager(addr, policy)
            manager.manage(APP, self.manager_addrs)
            self.network.register(manager)
            self.managers.append(manager)
        self.host = AccessControlHost(
            "h0", policy, managers={APP: self.manager_addrs},
            clock=LocalClock(self.env),
        )
        self.host.pipeline.combiner_factory = (
            lambda _policy: WeightedVoteCombiner(weights, check_threshold)
        )
        self.network.register(self.host)

    def grant_everywhere(self, user):
        entry = AclEntry(user, Right.USE, True, Version(1, "~seed"))
        for manager in self.managers:
            manager.bootstrap(APP, [entry])

    def check(self, user):
        process = self.host.request_access(APP, user)
        self.env.run(until=self.env.now + 30.0)
        return process.value


class TestWeightedVariantByComposition:
    def test_weighted_grant_without_touching_host(self):
        harness = WeightedHarness(
            {"m0": 2.0, "m1": 2.0, "m2": 1.0}, check_threshold=3.0
        )
        harness.grant_everywhere("alice")
        decision = harness.check("alice")
        assert decision.allowed
        assert decision.reason == DecisionReason.VERIFIED
        assert type(harness.host) is AccessControlHost  # stock class

    def test_light_managers_alone_cannot_decide(self):
        # Only the weight-1 manager is reachable; threshold 3 is out of
        # reach, so the round is indecisive and the check exhausts.
        harness = WeightedHarness(
            {"m0": 2.0, "m1": 2.0, "m2": 1.0}, check_threshold=3.0
        )
        harness.grant_everywhere("alice")
        harness.managers[0].crash()
        harness.managers[1].crash()
        decision = harness.check("alice")
        assert not decision.allowed
        assert decision.reason == DecisionReason.EXHAUSTED

    def test_heavy_pair_survives_light_crash(self):
        harness = WeightedHarness(
            {"m0": 2.0, "m1": 2.0, "m2": 1.0}, check_threshold=3.0
        )
        harness.grant_everywhere("alice")
        harness.managers[2].crash()
        decision = harness.check("alice")
        assert decision.allowed  # m0 + m1 carry 4 >= 3 votes
