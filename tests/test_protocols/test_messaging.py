"""Tests for the shared request/reply and retry messaging substrate.

Imported through :mod:`repro.net.transport` — the backend-agnostic
entry point — so these contracts are pinned where both the sim and the
socket transports see them.
"""

from __future__ import annotations

from repro.net.transport import ReplyTable, request, retry_until_acked
from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.node import Node
from repro.sim.trace import Tracer


class Echo(Node):
    """Replies to every message with (request_id, payload) after a beat."""

    def __init__(self, address="echo", reply=True):
        super().__init__(address)
        self.reply = reply
        self.seen = []

    def handle_message(self, src, message):
        self.seen.append(message)
        if self.reply:
            self.send(src, message)


class Caller(Node):
    def __init__(self, address="caller"):
        super().__init__(address)
        self.table = ReplyTable()
        self.replies = []

    def handle_message(self, src, message):
        request_id, _payload = message
        self.table.dispatch(request_id, message)


def build(reply=True):
    env = Environment()
    network = Network(env, latency=FixedLatency(0.01), tracer=Tracer(env))
    echo = Echo(reply=reply)
    caller = Caller()
    network.register(echo)
    network.register(caller)
    return env, echo, caller


class TestReplyTable:
    def test_ids_are_fresh_and_monotonic(self):
        table = ReplyTable()
        a = table.allocate(lambda reply: None)
        b = table.allocate(lambda reply: None)
        assert b == a + 1
        assert a in table and b in table

    def test_dispatch_routes_once(self):
        table = ReplyTable()
        got = []
        rid = table.allocate(got.append)
        assert table.dispatch(rid, "x") is True
        assert table.dispatch(rid, "y") is False  # consumed
        assert got == ["x"]

    def test_discard_drops_late_replies(self):
        table = ReplyTable()
        got = []
        rid = table.allocate(got.append)
        table.discard(rid)
        assert table.dispatch(rid, "late") is False
        assert not got and len(table) == 0

    def test_clear_and_truthiness(self):
        table = ReplyTable()
        table.allocate(lambda reply: None)
        assert table and len(table) == 1
        table.clear()
        assert not table  # `not host._pending_queries` idiom

    def test_separate_tables_have_separate_counters(self):
        queries, lookups = ReplyTable(), ReplyTable()
        assert queries.allocate(lambda r: None) == 1
        assert lookups.allocate(lambda r: None) == 1


class TestRequest:
    def test_reply_returned(self):
        env, echo, caller = build(reply=True)
        proc = env.process(
            request(caller, caller.table, "echo",
                    lambda rid: (rid, "hello"), timeout=1.0)
        )
        env.run(until=5.0)
        assert proc.value == (1, "hello")
        assert len(caller.table) == 0  # cleaned up

    def test_timeout_returns_none(self):
        env, echo, caller = build(reply=False)
        proc = env.process(
            request(caller, caller.table, "echo",
                    lambda rid: (rid, "hello"), timeout=1.0)
        )
        env.run(until=5.0)
        assert proc.value is None
        assert len(caller.table) == 0  # table cleaned even on timeout

    def test_on_sent_hook_fires(self):
        env, echo, caller = build(reply=True)
        sent = []
        env.process(
            request(caller, caller.table, "echo",
                    lambda rid: (rid, "x"), timeout=1.0,
                    on_sent=lambda: sent.append(env.now))
        )
        env.run(until=5.0)
        assert sent == [0.0]


class TestRetryUntilAcked:
    def test_stops_on_ack(self):
        env, echo, caller = build(reply=False)
        acked = env.event()

        def ack_later():
            yield env.timeout(0.25)
            acked.succeed()

        env.process(ack_later())
        env.process(
            retry_until_acked(caller, "echo", "notify", 0.1, acked)
        )
        env.run(until=5.0)
        # 0.0, 0.1, 0.2 sends; acked at 0.25 ends the loop.
        assert len(echo.seen) == 3

    def test_deadline_bounds_retries(self):
        env, echo, caller = build(reply=False)
        acked = env.event()  # never fires
        env.process(
            retry_until_acked(
                caller, "echo", "notify", 0.1, acked, deadline=0.35
            )
        )
        env.run(until=5.0)
        assert len(echo.seen) == 4  # sends at 0.0, 0.1, 0.2, 0.3

    def test_crashed_sender_keeps_pacing_without_sending(self):
        env, echo, caller = build(reply=False)
        acked = env.event()
        caller.crash()
        env.process(
            retry_until_acked(
                caller, "echo", "notify", 0.1, acked, deadline=0.3
            )
        )
        env.run(until=5.0)
        assert echo.seen == []
