"""Property tests for the binary wire codec and its interning dictionary.

Three laws on top of the JSON codec's bijection (which
``test_codec_property`` pins):

* the binary codec is a bijection on the same registry —
  ``decode_bin(encode_bin(m)) == m`` for every wire dataclass strategy;
* the two codecs agree — decoding a message's binary bytes and its JSON
  bytes yields *equal* messages, so a mixed-codec cluster sees one
  protocol;
* the per-session dictionary is idempotent on names — re-sending the
  same strings never grows it, and dense-block ``u<i>`` names never
  enter it at all.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import messages as m
from repro.core.rights import Right, Version
from repro.net.codec import CodecError, decode_message, encode_message
from repro.net.codec_bin import (
    DICT_MAX,
    INTERN_MAX,
    BinaryDecoder,
    BinaryEncoder,
    DictionaryError,
    decode_bin,
    encode_bin,
    read_varint,
    write_varint,
)

from .test_codec_property import wire_messages

# The steady-state message mix of a live cell: queries out, responses
# back, revocations fanned to hosts.
_MIX = (
    m.QueryRequest(query_id=1, application="app", user="u7", right=Right.USE),
    m.QueryResponse(
        query_id=1,
        application="app",
        user="u7",
        right=Right.USE,
        verdict="grant",
        te=42.5,
        version=Version(1_700_000_000_123, "m0"),
        manager="m0",
    ),
    m.RevokeNotify(
        application="app",
        user="u7",
        right=Right.USE,
        version=Version(1_700_000_000_456, "m1"),
        notify_id=9,
    ),
)


class TestVarint:
    @given(value=st.integers(min_value=0, max_value=2**512))
    def test_round_trip(self, value):
        out = bytearray()
        write_varint(out, value)
        got, pos = read_varint(bytes(out), 0)
        assert got == value and pos == len(out)

    def test_truncated_rejected(self):
        out = bytearray()
        write_varint(out, 1 << 40)
        with pytest.raises(CodecError):
            read_varint(bytes(out[:-1]), 0)


class TestBinaryRoundTrip:
    @settings(deadline=None)
    @given(message=wire_messages)
    def test_decode_inverts_encode(self, message):
        decoded = decode_bin(encode_bin(message))
        assert decoded == message
        assert type(decoded) is type(message)

    @settings(deadline=None)
    @given(message=wire_messages)
    def test_binary_and_json_decode_to_equal_messages(self, message):
        assert decode_bin(encode_bin(message)) == decode_message(
            encode_message(message)
        )

    @settings(deadline=None)
    @given(messages=st.lists(wire_messages, min_size=1, max_size=8))
    def test_stateful_pair_round_trips_a_stream(self, messages):
        encoder, decoder = BinaryEncoder(), BinaryDecoder()
        for message in messages:
            assert decoder.decode(encoder.encode(message)) == message
        assert encoder.dictionary_size == decoder.dictionary_size

    def test_malformed_inputs_rejected(self):
        with pytest.raises(CodecError):
            decode_bin(b"")
        with pytest.raises(CodecError):
            decode_bin(b"\xff")  # unknown tag
        with pytest.raises(CodecError):
            decode_bin(encode_bin(_MIX[0]) + b"\x00")  # trailing bytes
        with pytest.raises(CodecError):
            decode_bin(encode_bin(_MIX[0])[:-2])  # truncated
        with pytest.raises(CodecError):
            decode_bin(b"\x03\x04")  # a bare int is not a wire message
        with pytest.raises(CodecError):
            encode_bin({"plain": "dict"})  # not a wire message
        with pytest.raises(CodecError):
            encode_bin(m.AppRequest(request_id=1, application="a", user="u", payload=object()))

    def test_unknown_dictionary_reference_is_stream_fatal(self):
        # A reference the decoder never saw a definition for can only
        # mean lost frames: DictionaryError, distinct from per-message
        # CodecError, so the transport resets the connection.
        encoder = BinaryEncoder()
        blob_def = encoder.encode(m.Ping(nonce=1, sender="somebody"))
        blob_ref = encoder.encode(m.Ping(nonce=2, sender="somebody"))
        fresh = BinaryDecoder()
        with pytest.raises(DictionaryError):
            fresh.decode(blob_ref)  # skipped the defining frame
        assert isinstance(DictionaryError("x"), CodecError)
        # In order, both decode.
        ordered = BinaryDecoder()
        assert ordered.decode(blob_def).sender == "somebody"
        assert ordered.decode(blob_ref).sender == "somebody"


class TestInterningDictionary:
    @settings(deadline=None)
    @given(messages=st.lists(wire_messages, min_size=1, max_size=6))
    def test_resending_the_same_messages_never_grows_the_dictionary(self, messages):
        encoder = BinaryEncoder()
        decoder = BinaryDecoder()
        for message in messages:
            decoder.decode(encoder.encode(message))
        size = encoder.dictionary_size
        for _ in range(3):
            for message in messages:
                decoder.decode(encoder.encode(message))
        assert encoder.dictionary_size == size
        assert decoder.dictionary_size == size

    def test_repeat_names_become_references_and_shrink(self):
        encoder = BinaryEncoder()
        first = encoder.encode(_MIX[1])
        again = encoder.encode(_MIX[1])
        assert len(again) < len(first)
        assert encoder.dictionary_size > 0

    @given(index=st.integers(min_value=0, max_value=10**12))
    def test_dense_block_names_never_enter_the_dictionary(self, index):
        encoder, decoder = BinaryEncoder(), BinaryDecoder()
        ping = m.Ping(nonce=1, sender=f"u{index}")
        assert decoder.decode(encoder.encode(ping)) == ping
        assert encoder.dictionary_size == 0
        assert decoder.dictionary_size == 0

    def test_non_canonical_dense_lookalikes_are_interned_not_dense(self):
        # "u01" must not alias "u1" (the ids.py canonical-decimal rule).
        encoder, decoder = BinaryEncoder(), BinaryDecoder()
        for name in ("u01", "u1x", "u", "v3", "u-1"):
            ping = m.Ping(nonce=1, sender=name)
            assert decoder.decode(encoder.encode(ping)) == ping
        assert encoder.dictionary_size == 5

    def test_oversized_strings_stay_inline(self):
        encoder = BinaryEncoder()
        long_name = "x" * (INTERN_MAX + 1)
        for _ in range(2):
            assert decode_bin(encoder.encode(m.Ping(nonce=1, sender=long_name))) or True
        assert encoder.dictionary_size == 0
        assert DICT_MAX > 0  # the cap exists; exhausting it is too slow here


class TestSizeWin:
    def test_steady_state_bytes_beat_json_by_the_gate_margin(self):
        # Warm one session dictionary, then compare a steady-state pass
        # over the standard mix — the shape the wire_codec bench gates.
        encoder = BinaryEncoder()
        for message in _MIX:
            encoder.encode(message)
        binary = sum(len(encoder.encode(message)) for message in _MIX)
        json_bytes = sum(len(encode_message(message)) for message in _MIX)
        assert json_bytes / binary >= 2.5
