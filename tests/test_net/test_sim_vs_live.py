"""The sim<->socket differential suite.

Every scenario is derived deterministically from a fuzz
:class:`~repro.verify.schedules.Schedule` and executed twice: once on
the in-process simulator, once over real localhost TCP (accelerated
wall clock).  The two backends must agree *decision-exactly* — the same
access decisions with the same reasons, and ACLs that converge to the
same (granted, version-rank, origin) state on every manager — while
being free to disagree on timing (HLC counters embed physical
milliseconds, hence the rank canonicalisation in ScenarioOutcome).

Tier-1 runs the two golden-trace schedules (one quorum cell, one
freeze cell) plus a scheduler-invariance check; the wider ten-cell
fuzz sample is ``slow`` and runs in the net-smoke CI job.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.net.scenario import derive_scenario, run_scenario_live, run_scenario_sim
from repro.verify.schedules import Schedule, generate_schedule

FIXTURES = Path(__file__).parent.parent / "test_verify" / "fixtures"
GOLDEN = sorted(FIXTURES.glob("golden_trace_*.json"))

#: Sim-seconds per wall-second for the live leg.  Scenarios span ~60
#: sim-seconds, so a run costs ~1.2 wall-seconds plus socket overhead.
TIME_SCALE = 50.0


def _golden_schedule(path: Path) -> Schedule:
    with path.open(encoding="utf-8") as handle:
        return Schedule.from_dict(json.load(handle)["schedule"])


def _mixed_codec_map(scenario) -> dict:
    """Alternate codecs across the cell so every link shape appears:
    binary->binary, binary->json, json->binary, json->json."""
    addrs = [f"m{i}" for i in range(scenario.n_managers)] + [
        f"h{i}" for i in range(scenario.n_hosts)
    ]
    return {addr: ("binary" if index % 2 == 0 else "json") for index, addr in enumerate(addrs)}


def _differential(schedule: Schedule, name: str, codec="json") -> None:
    scenario = derive_scenario(schedule, name=name)
    if codec == "mixed":
        codec = _mixed_codec_map(scenario)
    sim = run_scenario_sim(scenario)
    live = asyncio.run(run_scenario_live(scenario, time_scale=TIME_SCALE, codec=codec))
    assert sim.decisions == live.decisions, (
        f"{name}: decision streams diverge\n sim: {sim.decisions}\nlive: {live.decisions}"
    )
    assert sim.canonical() == live.canonical(), (
        f"{name}: converged ACL state diverges"
    )


@pytest.mark.parametrize("codec", ["json", "binary"])
@pytest.mark.parametrize("path", GOLDEN, ids=lambda p: p.stem)
def test_golden_trace_scenarios_match_on_both_backends(path, codec):
    _differential(_golden_schedule(path), f"{path.stem}-{codec}", codec=codec)


def test_golden_trace_scenario_matches_with_mixed_codec_cluster():
    # A JSON<->binary mixed cluster, negotiated per link, must stay
    # decision-exact against the sim baseline too.
    path = GOLDEN[0]
    _differential(_golden_schedule(path), f"{path.stem}-mixed", codec="mixed")


def test_golden_fixtures_cover_both_protocol_variants():
    # The differential above is only meaningful if the fixture pool
    # exercises quorum AND freeze dissemination.
    schedules = [_golden_schedule(path) for path in GOLDEN]
    assert any(s.policy.get("use_freeze") for s in schedules)
    assert any(not s.policy.get("use_freeze") for s in schedules)


def test_sim_leg_is_scheduler_invariant():
    # The differential baseline itself must not depend on which event
    # queue the sim uses.
    schedule = _golden_schedule(GOLDEN[0])
    scenario = derive_scenario(schedule, name="scheduler-invariance")
    heap = run_scenario_sim(scenario, scheduler="heap")
    calendar = run_scenario_sim(scenario, scheduler="calendar")
    assert heap.decisions == calendar.decisions
    assert heap.canonical() == calendar.canonical()


@pytest.mark.slow
@pytest.mark.parametrize("cell", range(10))
def test_fuzz_schedule_sample_matches_on_both_backends(cell):
    # Alternate the fuzz sample across codecs (and one mixed cluster)
    # so the slow leg sweeps the whole negotiation matrix for free.
    codec = ("json", "binary", "mixed")[cell % 3]
    _differential(generate_schedule(7, cell), f"fuzz-cell{cell}-{codec}", codec=codec)
