"""The Transport abstraction: one interface, two backends.

Pins the contract the differential suite relies on: the sim Network IS
a Transport, the messaging substrate is importable from the transport
layer (the canonical backend-agnostic entry point), and the socket
backend moves real protocol messages between runtimes over TCP.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.messages import Ping, Pong
from repro.net.transport import Address, ReplyTable, Transport, request, retry_until_acked
from repro.net.runtime import LiveRuntime
from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.node import Node
from repro.sim.trace import Tracer


class Recorder(Node):
    def __init__(self, address: Address):
        super().__init__(address)
        self.received = []

    def handle_message(self, src, message):
        self.received.append((src, message))


class Responder(Node):
    def handle_message(self, src, message):
        if isinstance(message, Ping):
            self.send(src, Pong(nonce=message.nonce, sender=self.address))


class TestInterface:
    def test_sim_network_is_a_transport(self):
        env = Environment()
        network = Network(env, tracer=Tracer(env), latency=FixedLatency(0.01))
        assert isinstance(network, Transport)

    def test_messaging_substrate_reexported(self):
        # The transport module is the canonical import point; it must be
        # the same objects protocol code binds, not copies.
        from repro.protocols import messaging

        assert ReplyTable is messaging.ReplyTable
        assert request is messaging.request
        assert retry_until_acked is messaging.retry_until_acked

    def test_default_multicast_and_send_many_delegate_to_send(self):
        sent = []

        class Fake(Transport):
            def send(self, src, dst, message):
                sent.append((src, dst, message))

        fake = Fake()
        fake.multicast("a", ["b", "c"], "msg")
        observed = []
        fake.send_many("a", [("d", "m1"), ("e", "m2")], on_sent=lambda d, m: observed.append(d))
        assert sent == [("a", "b", "msg"), ("a", "c", "msg"), ("a", "d", "m1"), ("a", "e", "m2")]
        assert observed == ["d", "e"]

    def test_base_send_and_register_are_abstract(self):
        transport = Transport()
        with pytest.raises(NotImplementedError):
            transport.send("a", "b", "msg")
        with pytest.raises(NotImplementedError):
            transport.register(object())


class TestSocketBackend:
    def test_ping_pong_between_two_runtimes(self):
        async def scenario():
            left = LiveRuntime(b"secret", time_scale=10.0)
            right = LiveRuntime(b"secret", time_scale=10.0)
            pinger = Recorder("alpha")
            ponger = Responder("beta")
            left.register(pinger)
            right.register(ponger)
            left_port = await left.start()
            right_port = await right.start()
            directory = {
                "alpha": ("127.0.0.1", left_port),
                "beta": ("127.0.0.1", right_port),
            }
            left.set_peers(directory)
            right.set_peers(directory)
            left.call_soon(lambda: pinger.send("beta", Ping(nonce=7, sender="alpha")))
            try:
                for _ in range(500):
                    if pinger.received:
                        break
                    await asyncio.sleep(0.01)
                return list(pinger.received)
            finally:
                await left.stop()
                await right.stop()

        received = asyncio.run(scenario())
        assert received == [("beta", Pong(nonce=7, sender="beta"))]

    def test_crashed_node_neither_sends_nor_receives(self):
        async def scenario():
            left = LiveRuntime(b"secret", time_scale=10.0)
            right = LiveRuntime(b"secret", time_scale=10.0)
            sender = Recorder("alpha")
            receiver = Recorder("beta")
            left.register(sender)
            right.register(receiver)
            directory = {
                "alpha": ("127.0.0.1", await left.start()),
                "beta": ("127.0.0.1", await right.start()),
            }
            left.set_peers(directory)
            right.set_peers(directory)
            try:
                # Crashed sender: dropped at the source.
                sender.up = False
                left.call_soon(lambda: sender.send("beta", Ping(nonce=1, sender="alpha")))
                await asyncio.sleep(0.2)
                down_sender = list(receiver.received)
                # Crashed receiver: dropped at the destination.
                sender.up = True
                receiver.up = False
                left.call_soon(lambda: sender.send("beta", Ping(nonce=2, sender="alpha")))
                await asyncio.sleep(0.2)
                down_receiver = list(receiver.received)
                # Both up again: delivery resumes.
                receiver.up = True
                left.call_soon(lambda: sender.send("beta", Ping(nonce=3, sender="alpha")))
                for _ in range(300):
                    if receiver.received:
                        break
                    await asyncio.sleep(0.01)
                return down_sender, down_receiver, list(receiver.received)
            finally:
                await left.stop()
                await right.stop()

        down_sender, down_receiver, final = asyncio.run(scenario())
        assert down_sender == []
        assert down_receiver == []
        assert final == [("alpha", Ping(nonce=3, sender="alpha"))]

    def test_unknown_destination_drops_and_counts(self):
        async def scenario():
            runtime = LiveRuntime(b"secret", time_scale=10.0)
            node = Recorder("alpha")
            runtime.register(node)
            await runtime.start()
            try:
                before = runtime.transport.messages_dropped
                runtime.call_soon(lambda: node.send("ghost", Ping(nonce=1, sender="alpha")))
                await asyncio.sleep(0.1)
                return before, runtime.transport.messages_dropped
            finally:
                await runtime.stop()

        before, after = asyncio.run(scenario())
        assert after == before + 1
