"""In-process smoke of the ``repro serve`` CLI (all three roles).

The subprocess + port-file handshake is exercised by the CI net-smoke
job; these stay tier-1 by running ``main()`` directly with short
``--run-for`` windows.
"""

from __future__ import annotations

import json

import pytest

from repro.core.rights import Right
from repro.net.serve import _parse_grants, _parse_peers, build_parser, main


class TestParsing:
    def test_peer_directory(self):
        assert _parse_peers("m0=127.0.0.1:7100, m1=127.0.0.1:7101,") == {
            "m0": ("127.0.0.1", 7100),
            "m1": ("127.0.0.1", 7101),
        }
        assert _parse_peers("") == {}

    def test_grants_default_to_use(self):
        assert _parse_grants(["alice", "bob:manage"]) == [
            ("alice", Right.USE),
            ("bob", Right.MANAGE),
        ]

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.role == "cell"
        assert args.managers == 3 and args.hosts == 2


class TestRoles:
    def test_cell_role_writes_port_file_and_exits(self, tmp_path, capsys):
        port_file = tmp_path / "cell.json"
        status = main(
            [
                "--role", "cell", "--managers", "2", "--hosts", "1",
                "--check-quorum", "2",
                "--secret", "cli-test", "--port-file", str(port_file),
                "--grant", "alice", "--grant", "bob:manage",
                "--time-scale", "20", "--run-for", "0.3",
            ]
        )
        assert status == 0
        directory = json.loads(port_file.read_text())
        assert set(directory) == {"m0", "m1", "h0"}
        for _host, port in directory.values():
            assert port > 0
        out = capsys.readouterr().out
        assert "cell up: 2 managers, 1 hosts" in out
        assert "cell stopped" in out

    def test_manager_and_host_roles_boot_standalone(self, capsys):
        for argv in (
            ["--role", "manager", "--address", "m0", "--manager-set", "m0"],
            ["--role", "host", "--address", "h0", "--manager-set", "m0"],
        ):
            status = main(
                argv
                + ["--check-quorum", "1", "--secret", "cli-test",
                   "--run-for", "0.2"]
            )
            assert status == 0
        out = capsys.readouterr().out
        assert "manager m0 listening on" in out
        assert "host h0 listening on" in out

    def test_node_roles_require_address_and_manager_set(self):
        with pytest.raises(SystemExit):
            main(["--role", "manager", "--secret", "x", "--run-for", "0.1"])
        with pytest.raises(SystemExit):
            main(
                ["--role", "host", "--address", "h0", "--secret", "x",
                 "--run-for", "0.1"]
            )
