"""Codec negotiation over real sockets: handshake, downgrade, coalescing.

The handshake contract the binary fast path rides on:

* two binary-preferring runtimes negotiate binary per connection and
  coalesce same-flush fan-out into segments (one MAC, one write);
* a binary client against a JSON-only server gets a *structured*
  rejection — counted under the session's ``negotiation`` counter —
  and downgrades that link to JSON with zero message loss;
* a hello naming an unknown codec is rejected the same way, and the
  connection keeps serving JSON frames afterwards (nothing poisons);
* replayed binary segments are rejected by the per-segment nonce.
"""

from __future__ import annotations

import asyncio
import json

from repro.core.messages import Ping, Pong
from repro.net.codec import FrameReader, encode_frame, encode_message
from repro.net.runtime import LiveRuntime
from repro.net.session import SessionAuth
from repro.sim.node import Node

SECRET = b"negotiation-secret"


class RecorderNode(Node):
    def __init__(self, address):
        super().__init__(address)
        self.received = []

    def handle_message(self, src, message):
        self.received.append((src, message))


class ResponderNode(Node):
    def handle_message(self, src, message):
        if isinstance(message, Ping):
            self.send(src, Pong(nonce=message.nonce, sender=self.address))


class TestBinaryNegotiation:
    def test_binary_pair_coalesces_fanout_into_segments(self):
        async def scenario():
            left = LiveRuntime(SECRET, time_scale=10.0, codec="binary")
            right = LiveRuntime(SECRET, time_scale=10.0, codec="binary")
            pinger = RecorderNode("alpha")
            left.register(pinger)
            for i in range(4):
                right.register(ResponderNode(f"beta{i}"))
            left_port = await left.start()
            right_port = await right.start()
            directory = {"alpha": ("127.0.0.1", left_port)}
            directory.update({f"beta{i}": ("127.0.0.1", right_port) for i in range(4)})
            left.set_peers(directory)
            right.set_peers(directory)

            def burst():
                for round_no in range(10):
                    for i in range(4):
                        pinger.send(f"beta{i}", Ping(nonce=round_no * 4 + i, sender="alpha"))

            left.call_soon(burst)
            try:
                for _ in range(500):
                    if len(pinger.received) >= 40:
                        break
                    await asyncio.sleep(0.01)
                return (
                    len(pinger.received),
                    left.transport.wire_stats(),
                    right.transport.wire_stats(),
                )
            finally:
                await left.stop()
                await right.stop()

        count, left_wire, right_wire = asyncio.run(scenario())
        assert count == 40
        # The 40-ping fan-out left alpha as segments, not 40 frames:
        # coalescing packed a whole flush per endpoint per write.
        assert left_wire["codec"] == "binary"
        assert 0 < left_wire["segments_sent"] < 40
        assert left_wire["segment_msgs_sent"] == 40
        assert left_wire["msgs_per_segment"] > 1.0
        # And the replies came back as segments from the other side.
        assert right_wire["segment_msgs_sent"] == 40
        assert left_wire["segments_received"] == right_wire["segments_sent"]

    def test_binary_client_downgrades_against_json_only_server(self):
        async def scenario():
            client = LiveRuntime(SECRET, time_scale=10.0, codec="binary")
            server = LiveRuntime(SECRET, time_scale=10.0, accept_binary=False)
            pinger = RecorderNode("alpha")
            ponger = ResponderNode("beta")
            client.register(pinger)
            server.register(ponger)
            directory = {
                "alpha": ("127.0.0.1", await client.start()),
                "beta": ("127.0.0.1", await server.start()),
            }
            client.set_peers(directory)
            server.set_peers(directory)
            client.call_soon(lambda: pinger.send("beta", Ping(nonce=7, sender="alpha")))
            try:
                for _ in range(500):
                    if pinger.received:
                        break
                    await asyncio.sleep(0.01)
                return (
                    list(pinger.received),
                    dict(server.transport.auth.rejected),
                    client.transport.wire_stats(),
                    server.transport.messages_delivered,
                )
            finally:
                await client.stop()
                await server.stop()

        received, rejected, client_wire, delivered = asyncio.run(scenario())
        # The message arrived despite the rejection: the link downgraded.
        assert received == [("beta", Pong(nonce=7, sender="beta"))]
        assert delivered == 1
        # Structured rejection, counted per kind in the session counters.
        assert rejected["negotiation"] == 1
        # Nothing travelled as a binary segment.
        assert client_wire["segments_sent"] == 0

    def test_unknown_codec_name_rejected_without_poisoning_connection(self):
        async def scenario():
            server = LiveRuntime(SECRET, time_scale=10.0, keep_log=True)
            node = RecorderNode("alpha")
            server.register(node)
            port = await server.start()
            transport = server.transport
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                client_auth = SessionAuth(SECRET)
                # A hello naming a codec this build has never heard of.
                hello = json.dumps({"codec": "msgpack-vX", "v": 1}).encode("utf-8")
                writer.write(
                    encode_frame(b"H" + client_auth.seal("probe", f"127.0.0.1:{port}", hello))
                )
                await writer.drain()
                # Read the reject ack off the same (still healthy) stream.
                frames = FrameReader()
                ack_fields = None
                while ack_fields is None:
                    chunk = await asyncio.wait_for(reader.read(65536), timeout=5.0)
                    assert chunk, "server closed the connection on a bad codec name"
                    for body in frames.feed(chunk):
                        assert body[0:1] == b"A"
                        _, _, payload = client_auth.open(body[1:])
                        ack_fields = json.loads(payload.decode("utf-8"))
                # The connection still serves JSON frames afterwards.
                ping = encode_message(Ping(nonce=1, sender="probe"))
                writer.write(encode_frame(b"J" + client_auth.seal("probe", "alpha", ping)))
                await writer.drain()
                for _ in range(300):
                    if node.received:
                        break
                    await asyncio.sleep(0.01)
                writer.close()
                return ack_fields, dict(transport.auth.rejected), list(node.received)
            finally:
                await server.stop()

        ack, rejected, received = asyncio.run(scenario())
        assert ack["accept"] is False
        assert ack["codec"] == "json"
        assert "msgpack-vX" in ack["reason"]
        assert rejected["negotiation"] == 1
        assert received == [("probe", Ping(nonce=1, sender="probe"))]

    def test_replayed_segment_rejected_by_segment_nonce(self):
        async def scenario():
            client = LiveRuntime(SECRET, time_scale=10.0, codec="binary")
            server = LiveRuntime(SECRET, time_scale=10.0)
            pinger = RecorderNode("alpha")
            ponger = ResponderNode("beta")
            client.register(pinger)
            server.register(ponger)
            directory = {
                "alpha": ("127.0.0.1", await client.start()),
                "beta": ("127.0.0.1", await server.start()),
            }
            client.set_peers(directory)
            server.set_peers(directory)
            client.call_soon(lambda: pinger.send("beta", Ping(nonce=1, sender="alpha")))
            try:
                for _ in range(500):
                    if pinger.received:
                        break
                    await asyncio.sleep(0.01)
                # Replay the client's exact hello+segment bytes from a
                # pirate connection: the hello's nonce was already seen.
                assert pinger.received
                before = dict(server.transport.auth.rejected)
                replay_auth = SessionAuth(SECRET)
                stale_hello = replay_auth.seal("alpha", "anything", b'{"codec":"binary","v":1}')
                # A fresh SessionAuth restarts nonces at 1 — which the
                # server has already seen from "alpha" — so this is a
                # replay by construction.
                _, writer = await asyncio.open_connection(*directory["beta"])
                writer.write(encode_frame(b"H" + stale_hello))
                await writer.drain()
                await asyncio.sleep(0.3)
                writer.close()
                after = dict(server.transport.auth.rejected)
                return before, after
            finally:
                await client.stop()
                await server.stop()

        before, after = asyncio.run(scenario())
        assert after["replayed"] > before["replayed"]
