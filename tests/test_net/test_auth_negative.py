"""Negative-path session auth: every hostile frame is rejected, counted,
traced — and the server loop keeps serving.

Unit layer: :class:`~repro.net.session.SessionAuth` rejection kinds
(tampered / replayed / expired / malformed) with injected clocks, and
the no-burn rule — a tampered copy must not consume the legitimate
frame's nonce.

Live layer: a real asyncio server fed tampered, replayed, expired,
truncated, and oversized frames over raw TCP connections, then a valid
frame that must still be delivered.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.core.messages import Ping
from repro.net.codec import MAX_FRAME, encode_frame, encode_message
from repro.net.runtime import LiveRuntime
from repro.net.session import MAC_BYTES, AuthError, SessionAuth
from repro.sim.node import Node
from repro.sim.trace import TraceKind

SECRET = b"negative-path-secret"

#: Frame-kind prefix for legacy JSON session frames (see repro.net.tcp).
KIND_JSON = b"J"


def _jframe(blob: bytes) -> bytes:
    """A wire frame carrying one sealed JSON session blob."""
    return encode_frame(KIND_JSON + blob)


class Recorder(Node):
    def __init__(self, address):
        super().__init__(address)
        self.received = []

    def handle_message(self, src, message):
        self.received.append((src, message))


def _expect(auth: SessionAuth, kind: str, blob: bytes) -> None:
    before = auth.rejected[kind]
    with pytest.raises(AuthError) as excinfo:
        auth.open(blob)
    assert excinfo.value.kind == kind
    assert auth.rejected[kind] == before + 1


class TestSessionAuthUnit:
    def test_round_trip(self):
        auth = SessionAuth(SECRET)
        sender, recipient, payload = auth.open(auth.seal("a", "b", b"payload"))
        assert (sender, recipient, payload) == ("a", "b", b"payload")

    def test_tampered_mac_rejected_and_nonce_not_burned(self):
        auth = SessionAuth(SECRET)
        blob = auth.seal("a", "b", b"payload")
        tampered = bytes([blob[0] ^ 0xFF]) + blob[1:]
        _expect(auth, "tampered", tampered)
        # The untouched original still opens: rejection must not have
        # advanced the replay window.
        assert auth.open(blob)[2] == b"payload"

    def test_tampered_envelope_rejected(self):
        auth = SessionAuth(SECRET)
        blob = bytearray(auth.seal("a", "b", b"payload"))
        blob[MAC_BYTES + 4] ^= 0x01
        _expect(auth, "tampered", bytes(blob))

    def test_replayed_frame_rejected(self):
        auth = SessionAuth(SECRET)
        blob = auth.seal("a", "b", b"payload")
        auth.open(blob)
        _expect(auth, "replayed", blob)

    def test_stale_nonce_rejected(self):
        auth = SessionAuth(SECRET)
        first = auth.seal("a", "b", b"one")
        second = auth.seal("a", "b", b"two")
        auth.open(second)
        _expect(auth, "replayed", first)

    def test_expired_frame_rejected_both_directions(self):
        past = SessionAuth(SECRET, clock=lambda: 0.0)
        future = SessionAuth(SECRET, clock=lambda: 10_000.0)
        receiver = SessionAuth(SECRET, lifetime=30.0, clock=lambda: 5_000.0)
        _expect(receiver, "expired", past.seal("a", "b", b"stale"))
        _expect(receiver, "expired", future.seal("a", "b", b"predated"))

    def test_malformed_frames_rejected(self):
        auth = SessionAuth(SECRET)
        _expect(auth, "malformed", b"short")
        # A correctly MACed envelope that is not JSON.
        import hashlib
        import hmac as hmac_mod

        body = b"not json at all"
        mac = hmac_mod.new(SECRET, body, hashlib.sha256).digest()
        _expect(auth, "malformed", mac + body)
        # A correctly MACed envelope with a boolean nonce.
        envelope = (
            b'{"d":"b","n":true,"p":"x","s":"a","t":0}'
        )
        mac = hmac_mod.new(SECRET, envelope, hashlib.sha256).digest()
        _expect(auth, "malformed", mac + envelope)

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            SessionAuth(b"")


class TestLiveServerSurvival:
    def test_hostile_frames_dropped_without_killing_the_loop(self):
        async def scenario():
            runtime = LiveRuntime(SECRET, time_scale=10.0, keep_log=True)
            node = Recorder("alpha")
            runtime.register(node)
            port = await runtime.start()
            transport = runtime.transport

            async def fire(*frames: bytes) -> None:
                """One connection per call: framing errors poison a stream."""
                _, writer = await asyncio.open_connection("127.0.0.1", port)
                for frame in frames:
                    writer.write(frame)
                await writer.drain()
                await asyncio.sleep(0.05)
                writer.close()

            try:
                client = SessionAuth(SECRET)
                ping = encode_message(Ping(nonce=1, sender="probe"))

                # Tampered: flip one mac byte of an otherwise valid frame.
                blob = client.seal("probe", "alpha", ping)
                await fire(_jframe(bytes([blob[0] ^ 0xFF]) + blob[1:]))

                # Replayed: the same sealed frame twice (first is valid).
                blob = client.seal("probe", "alpha", ping)
                await fire(_jframe(blob), _jframe(blob))

                # Expired: sealed by a clock a week in the past.
                stale = SessionAuth(SECRET, clock=lambda: 0.0)
                await fire(_jframe(stale.seal("late", "alpha", ping)))

                # Truncated: a zero-length frame declaration.
                await fire(struct.pack(">I", 0) + b"junk")

                # Oversized: a length prefix beyond MAX_FRAME.
                await fire(struct.pack(">I", MAX_FRAME + 1))

                # Unknown frame kind: dropped, connection survives.
                await fire(encode_frame(b"Z" + client.seal("probe", "alpha", ping)))

                # The loop must still be serving: a fresh valid frame lands.
                final = client.seal("probe", "alpha", ping)
                await fire(_jframe(final))
                for _ in range(300):
                    if len(node.received) >= 2:
                        break
                    await asyncio.sleep(0.01)

                return (
                    list(node.received),
                    dict(transport.auth.rejected),
                    transport.frames_rejected,
                    runtime.tracer.count(TraceKind.MSG_DROPPED),
                )
            finally:
                await runtime.stop()

        received, rejected, frames_rejected, dropped = asyncio.run(scenario())
        # The replay's first copy and the final frame both arrived.
        assert received == [("probe", Ping(nonce=1, sender="probe"))] * 2
        assert rejected["tampered"] >= 1
        assert rejected["replayed"] >= 1
        assert rejected["expired"] >= 1
        # Auth rejections plus the two framing errors, all counted and traced.
        assert frames_rejected >= 5
        assert dropped >= 5
