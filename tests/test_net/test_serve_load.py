"""The serve+load closed loop, in-process.

Boots a live 3-manager/2-host cell (the same :class:`LiveCell` that
``repro serve --role cell`` runs) and drives it with the ``repro load``
generator: admin-protocol grants first, then closed-loop application
requests, with the RPS/latency report built from streaming summaries.
The full CLI path (subprocess + port file) is exercised by the CI
net-smoke job; this test keeps the loop itself tier-1.
"""

from __future__ import annotations

import asyncio
import json

from repro.net.cell import LiveCell
from repro.net.load import _load_directory, _print_report, run_load


def test_load_generator_closed_loop_against_live_cell():
    async def scenario():
        async with LiveCell(n_managers=3, n_hosts=2, time_scale=20.0) as cell:
            return await run_load(
                cell.directory,
                cell.secret,
                n_clients=2,
                duration=1.0,
                time_scale=20.0,
            )

    report = asyncio.run(scenario())
    assert report["requests"] > 0
    assert report["rps"] > 0
    # Every request was granted end-to-end: the admin-protocol grants
    # landed and verification succeeded over real sockets.
    assert set(report["outcomes"]) == {"ok"}
    assert report["outcomes"]["ok"] == report["requests"]
    latency = report["latency_ms"]
    assert latency is not None
    assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
    assert report["grant_seconds"] >= 0

    # The text report renders every section without blowing up.
    _print_report(report)


def test_load_generator_closed_loop_over_binary_codec():
    # The same closed loop, negotiated onto the binary fast path on
    # both sides: messages travel as coalesced segments and the report
    # carries the wire counters the CLI prints.
    async def scenario():
        async with LiveCell(
            n_managers=3, n_hosts=2, time_scale=20.0, codec="binary"
        ) as cell:
            return await run_load(
                cell.directory,
                cell.secret,
                n_clients=2,
                duration=0.5,
                time_scale=20.0,
                codec="binary",
            )

    report = asyncio.run(scenario())
    assert report["requests"] > 0
    assert set(report["outcomes"]) == {"ok"}
    wire = report["wire"]
    assert wire["codec"] == "binary"
    assert wire["segments_sent"] > 0
    assert wire["segment_msgs_sent"] >= report["requests"]
    _print_report(report)


def test_port_file_round_trip(tmp_path):
    path = tmp_path / "cell.json"
    path.write_text(json.dumps({"m0": ["127.0.0.1", 7100], "h0": ["127.0.0.1", 7200]}))
    assert _load_directory(str(path)) == {
        "m0": ("127.0.0.1", 7100),
        "h0": ("127.0.0.1", 7200),
    }
