"""Property tests for the wire codec and length-prefix framing.

Two laws the socket backend stands on:

* the tagged-JSON codec is a bijection on wire messages —
  ``decode(encode(m)) == m`` — and canonical — re-encoding a decoded
  message reproduces the exact bytes, so MAC verification never
  depends on field order or whitespace;
* the frame reader recovers every body exactly once from a stream cut
  at arbitrary points — partial prefixes, partial bodies, and many
  frames per chunk all included.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.auth.identity import SignedMessage
from repro.auth.signatures import Signature
from repro.core import messages as m
from repro.core.rights import AclEntry, Right, Version
from repro.net.codec import (
    MAX_FRAME,
    CodecError,
    FrameError,
    FrameReader,
    decode_message,
    encode_frame,
    encode_message,
)

# -- strategies ----------------------------------------------------------------

names = st.text(max_size=12)
ids = st.integers(min_value=0, max_value=2**62)
rights = st.sampled_from(list(Right))
finite_floats = st.floats(allow_nan=False, allow_infinity=False)
versions = st.builds(Version, counter=ids, origin=names)
acl_entries = st.builds(
    AclEntry, user=names, right=rights, granted=st.booleans(), version=versions
)

# Application payloads are opaque (``Any``) but must survive the codec:
# JSON scalars, tuples (JSON lists decode as tuples), and tagged maps
# with hashable keys.
scalars = st.none() | st.booleans() | ids | finite_floats | names
payloads = st.recursive(
    scalars,
    lambda inner: st.tuples(inner, inner) | st.dictionaries(scalars, inner, max_size=3),
    max_leaves=8,
)

signatures = st.builds(
    Signature, signer=names, value=st.integers(min_value=0, max_value=2**512)
)
acl_updates = st.builds(
    m.AclUpdate,
    update_id=names,
    application=names,
    user=names,
    right=rights,
    grant=st.booleans(),
    version=versions,
    origin=names,
)

bare_messages = st.one_of(
    st.builds(m.QueryRequest, query_id=ids, application=names, user=names, right=rights),
    st.builds(
        m.QueryResponse,
        query_id=ids,
        application=names,
        user=names,
        right=rights,
        verdict=st.sampled_from(("grant", "deny")),
        te=finite_floats,
        version=versions,
        manager=names,
    ),
    st.builds(m.UpdateMsg, update=acl_updates),
    st.builds(m.UpdateAck, update_id=names, acker=names),
    st.builds(
        m.RevokeNotify,
        application=names,
        user=names,
        right=rights,
        version=versions,
        notify_id=ids,
    ),
    st.builds(m.RevokeNotifyAck, notify_id=ids, host=names),
    st.builds(m.SyncRequest, requester=names, applications=st.tuples(names, names)),
    st.builds(
        m.SyncResponse,
        responder=names,
        snapshots=st.lists(
            st.tuples(names, st.lists(acl_entries, max_size=3).map(tuple)), max_size=3
        ).map(tuple),
    ),
    st.builds(m.Ping, nonce=ids, sender=names),
    st.builds(m.Pong, nonce=ids, sender=names),
    st.builds(m.NameLookup, lookup_id=ids, application=names),
    st.builds(
        m.NameResult, lookup_id=ids, application=names, managers=st.tuples(names, names)
    ),
    st.builds(
        m.AdminRequest,
        request_id=ids,
        application=names,
        subject=names,
        right=rights,
        grant=st.booleans(),
        admin=names,
    ),
    st.builds(
        m.AdminResponse, request_id=ids, accepted=st.booleans(), reason=names, update_id=names
    ),
    st.builds(m.AppRequest, request_id=ids, application=names, user=names, payload=payloads),
    st.builds(
        m.AppResponse,
        request_id=ids,
        application=names,
        allowed=st.booleans(),
        result=payloads,
        reason=names,
    ),
)

wire_messages = bare_messages | st.builds(
    SignedMessage, payload=bare_messages, signature=signatures
)


# -- codec laws ----------------------------------------------------------------


class TestCodecRoundTrip:
    @settings(deadline=None)
    @given(message=wire_messages)
    def test_decode_inverts_encode_and_bytes_are_canonical(self, message):
        encoded = encode_message(message)
        decoded = decode_message(encoded)
        assert decoded == message
        assert type(decoded) is type(message)
        assert encode_message(decoded) == encoded

    def test_unknown_tag_and_fields_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b'{"t":"NotAMessage","f":{}}')
        with pytest.raises(CodecError):
            decode_message(b'{"f":{"nonce":1,"sender":"a","extra":2},"t":"Ping"}')
        with pytest.raises(CodecError):
            decode_message(b'{"f":{"nonce":1},"t":"Ping"}')  # missing field
        with pytest.raises(CodecError):
            decode_message(b"not json at all")
        with pytest.raises(CodecError):
            decode_message(b'"just a string"')  # not a wire message

    def test_unregistered_type_rejected_on_encode(self):
        with pytest.raises(CodecError):
            encode_message({"plain": "dict"})


# -- framing laws --------------------------------------------------------------


class TestFraming:
    @settings(deadline=None)
    @given(
        bodies=st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=8),
        data=st.data(),
    )
    def test_reader_recovers_bodies_across_arbitrary_chunking(self, bodies, data):
        stream = b"".join(encode_frame(body) for body in bodies)
        cuts = sorted(
            data.draw(
                st.lists(st.integers(0, len(stream)), max_size=12),
                label="cut points",
            )
        )
        reader = FrameReader()
        recovered = []
        previous = 0
        for cut in cuts + [len(stream)]:
            recovered.extend(reader.feed(stream[previous:cut]))
            previous = cut
        assert recovered == bodies
        assert reader.pending == 0

    def test_oversized_body_rejected_on_encode(self):
        with pytest.raises(FrameError):
            encode_frame(b"x" * (MAX_FRAME + 1))

    def test_oversized_length_prefix_poisons_reader(self):
        reader = FrameReader()
        with pytest.raises(FrameError):
            reader.feed(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(FrameError):
            reader.feed(b"")  # poisoned: every later feed fails too

    def test_zero_length_frame_rejected(self):
        reader = FrameReader()
        with pytest.raises(FrameError):
            reader.feed(struct.pack(">I", 0) + b"rest")

    def test_many_small_frames_in_one_buffer_is_linear(self):
        # Regression: the reader used to `del buffer[:n]` per frame,
        # shifting the whole tail each time — O(n^2) over a chunk of
        # 10k concatenated frames (exactly the coalesced-segment shape).
        # With the offset cursor this completes in well under a second;
        # the quadratic version took tens of seconds.
        import time

        bodies = [b"x%06d" % i for i in range(10_000)]
        stream = b"".join(encode_frame(body) for body in bodies)
        reader = FrameReader()
        begin = time.perf_counter()
        recovered = reader.feed(stream)
        elapsed = time.perf_counter() - begin
        assert recovered == bodies
        assert reader.pending == 0
        assert elapsed < 2.0, f"frame feed took {elapsed:.2f}s — compaction regressed"

    def test_cursor_persists_across_feeds_with_partial_tail(self):
        # A feed ending mid-frame leaves the partial bytes pending; the
        # next feed completes it and pending returns to zero.
        first = encode_frame(b"alpha")
        second = encode_frame(b"beta")
        reader = FrameReader()
        got = reader.feed(first + second[:3])
        assert got == [b"alpha"]
        assert reader.pending == 3
        assert reader.feed(second[3:]) == [b"beta"]
        assert reader.pending == 0
