"""Long-horizon chaos tests: everything failing at once.

These are the closest thing to the paper's deployment environment: an
epoch-partitioned WAN with crash/recovery injection on hosts *and*
managers, continuous access and update workloads, drifting clocks —
and the invariants that must survive it all.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.core.policy import AccessPolicy, ExhaustedAction
from repro.core.rights import Right
from repro.core.system import AccessControlSystem
from repro.metrics.collectors import availability_report
from repro.sim.partitions import PairEpochModel
from repro.workloads.generators import (
    AccessWorkload,
    AuthorizationOracle,
    UpdateWorkload,
)
from repro.workloads.population import UserPopulation

APP = "app"
TE = 60.0


@pytest.fixture(scope="module")
def chaos_run():
    """One shared 3000-simulated-second chaos run (expensive)."""
    policy = AccessPolicy(
        check_quorum=2,
        expiry_bound=TE,
        clock_bound=1.1,
        max_attempts=2,
        exhausted_action=ExhaustedAction.DENY,
        query_timeout=1.0,
        retry_backoff=0.5,
    )
    system = AccessControlSystem(
        n_managers=3,
        n_hosts=4,
        applications=(APP,),
        policy=policy,
        connectivity=PairEpochModel(pi=0.15, mean_outage=40.0),
        host_failures=(600.0, 60.0),
        manager_failures=(900.0, 60.0),
        seed=2024,
    )
    population = UserPopulation(30, zipf_s=1.0)
    oracle = AuthorizationOracle(expiry_bound=TE)
    for user in population.head(24):
        system.seed_grant(APP, user)
        oracle.grant(APP, user)
    access = AccessWorkload(
        system, APP, population, oracle, rate=3.0,
        rng=system.streams.stream("chaos-access"),
    )
    updates = UpdateWorkload(
        system, APP, population, oracle, rate=0.05,
        rng=system.streams.stream("chaos-updates"),
        target_fraction=0.8,
    )
    system.run(until=3_000.0)
    return system, oracle, access, updates


class TestChaos:
    def test_no_te_violations_ever(self, chaos_run):
        """The central invariant survives combined failures."""
        system, oracle, access, _updates = chaos_run
        violations = 0
        for observed in access.observations:
            if not observed.decision.allowed or observed.authorized:
                continue
            decided_at = observed.time + observed.decision.latency
            if oracle.violation(observed.application, observed.user, decided_at):
                violations += 1
        assert violations == 0

    def test_failures_actually_happened(self, chaos_run):
        """The run is only meaningful if the injectors fired."""
        system, _oracle, _access, _updates = chaos_run
        assert system.host_injector.crashes_injected >= 2
        assert system.manager_injector.crashes_injected >= 2

    def test_workload_made_progress(self, chaos_run):
        system, _oracle, access, updates = chaos_run
        assert len(access.observations) > 2_000
        assert updates.adds > 10 and updates.revokes > 10

    def test_availability_reasonable_despite_chaos(self, chaos_run):
        """With C=2/M=3 and pi=0.15, analysis says PA ~ 0.94 per
        attempt; retries and caching should keep the realized figure in
        the same region even with crashes layered on."""
        _system, _oracle, access, _updates = chaos_run
        report = availability_report(access.observations)
        assert report.availability > 0.85

    def test_unauthorized_never_verified(self, chaos_run):
        """An unauthorized user may slip through only inside the Te
        grace window after losing rights — never via a fresh verify of
        a never-granted identity."""
        _system, oracle, access, _updates = chaos_run
        for observed in access.observations:
            if observed.authorized or not observed.decision.allowed:
                continue
            # Allowed while unauthorized: must be a cached or granted
            # right inside its legal window (checked in the violations
            # test); it must never be a 'verified' fresh grant unless a
            # re-add raced the observation snapshot.
            assert observed.decision.reason in ("cache", "verified")

    def test_managers_converge_after_quiescence(self, chaos_run):
        """Once traffic stops and partitions heal, persistent
        dissemination makes all manager ACLs agree."""
        system, oracle, _access, _updates = chaos_run
        # Tear down remaining chaos by healing everything and letting
        # retransmissions drain.  (Stops only the connectivity model's
        # influence; crashed managers recover via their injectors.)
        system.network.connectivity.pi = 0.0
        system.network.connectivity.force_resample = getattr(
            system.network.connectivity, "force_resample", lambda: None
        )
        system.network.connectivity._pairs.clear()
        system.run(until=system.env.now + 600.0)
        live = [m for m in system.managers if m.up and not m.recovering]
        assert len(live) >= 2
        reference = live[0]
        for manager in live[1:]:
            for user in [f"u{i}" for i in range(30)]:
                assert manager.acl(APP).check(user, Right.USE) == reference.acl(
                    APP
                ).check(user, Right.USE), user
