"""Tests for delegated administration (the manage right, Section 2.1)
and explicit stable storage."""

from __future__ import annotations

import random

import pytest

from repro.auth.identity import Authenticator, Principal
from repro.auth.keys import generate_keypair
from repro.core.admin import AdminClient
from repro.core.manager import AccessControlManager
from repro.core.policy import AccessPolicy
from repro.core.rights import AclEntry, Right, Version
from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.partitions import ScriptedConnectivity
from repro.sim.storage import StableStore
from repro.sim.trace import Tracer

APP = "app"


class AdminHarness:
    def __init__(self, signed: bool = False, with_store: bool = False,
                 n_managers: int = 3):
        self.env = Environment()
        self.tracer = Tracer(self.env)
        self.connectivity = ScriptedConnectivity()
        self.network = Network(
            self.env,
            connectivity=self.connectivity,
            latency=FixedLatency(0.05),
            tracer=self.tracer,
        )
        self.manager_addrs = tuple(f"m{i}" for i in range(n_managers))
        policy = AccessPolicy(
            check_quorum=2, expiry_bound=60.0, query_timeout=1.0,
            update_retry_interval=1.0, cache_cleanup_interval=None,
        )
        self.authenticator = Authenticator() if signed else None
        self.stores = {}
        self.managers = []
        for addr in self.manager_addrs:
            store = StableStore(addr) if with_store else None
            self.stores[addr] = store
            manager = AccessControlManager(
                addr, policy, store=store,
                admin_authenticator=self.authenticator,
            )
            manager.manage(APP, self.manager_addrs)
            self.network.register(manager)
            self.managers.append(manager)
        # The root administrator holds the manage right everywhere.
        root_entry = AclEntry("root", Right.MANAGE, True, Version(1, ""))
        for manager in self.managers:
            manager.bootstrap(APP, [root_entry])

    def client(self, admin_id: str, principal=None) -> AdminClient:
        client = AdminClient(f"c-{admin_id}", admin_id, principal=principal,
                             request_timeout=10.0)
        self.network.register(client)
        return client

    def run(self, duration: float):
        self.env.run(until=self.env.now + duration)


class TestDelegatedAdministration:
    def test_root_can_grant_use(self):
        harness = AdminHarness()
        root = harness.client("root")
        result = root.add_process("m0", APP, "alice", Right.USE)
        harness.run(10.0)
        assert result.value.accepted
        for manager in harness.managers:
            assert manager.acl(APP).check("alice", Right.USE)

    def test_root_can_revoke(self):
        harness = AdminHarness()
        root = harness.client("root")
        root.add_process("m0", APP, "alice")
        harness.run(5.0)
        result = root.revoke_process("m1", APP, "alice")
        harness.run(10.0)
        assert result.value.accepted
        assert not harness.managers[0].acl(APP).check("alice", Right.USE)

    def test_plain_user_rejected(self):
        harness = AdminHarness()
        nobody = harness.client("nobody")
        result = nobody.add_process("m0", APP, "crony")
        harness.run(10.0)
        assert not result.value.accepted
        assert "manage right required" in result.value.reason
        assert not harness.managers[0].acl(APP).check("crony", Right.USE)
        assert harness.managers[0].admin_requests_rejected == 1

    def test_delegation_chain(self):
        """root grants MANAGE to deputy; deputy can then administer."""
        harness = AdminHarness()
        root = harness.client("root")
        deputy = harness.client("deputy")
        grant = root.add_process("m0", APP, "deputy", Right.MANAGE)
        harness.run(10.0)
        assert grant.value.accepted
        result = deputy.add_process("m1", APP, "alice", Right.USE)
        harness.run(10.0)
        assert result.value.accepted

    def test_revoked_admin_loses_capability(self):
        harness = AdminHarness()
        root = harness.client("root")
        deputy = harness.client("deputy")
        root.add_process("m0", APP, "deputy", Right.MANAGE)
        harness.run(5.0)
        root.revoke_process("m0", APP, "deputy", Right.MANAGE)
        harness.run(5.0)
        result = deputy.add_process("m0", APP, "crony", Right.USE)
        harness.run(10.0)
        assert not result.value.accepted

    def test_unknown_application_rejected(self):
        harness = AdminHarness()
        root = harness.client("root")
        result = root.add_process("m0", "ghost-app", "alice")
        harness.run(10.0)
        assert not result.value.accepted
        assert "unknown application" in result.value.reason

    def test_response_waits_for_update_quorum(self):
        """The accepted response is the paper's blocking-return point:
        it only comes once M - C + 1 managers applied the change."""
        harness = AdminHarness()
        # Partition m0 from both peers: quorum (2) is unreachable.
        harness.connectivity.set_down("m0", "m1")
        harness.connectivity.set_down("m0", "m2")
        root = harness.client("root")
        result = root.add_process("m0", APP, "alice")
        harness.run(12.0)
        assert result.value.timed_out  # no quorum, no confirmation
        # The operation is still pending; healing completes it.
        harness.connectivity.set_up("m0", "m1")
        harness.run(10.0)
        assert harness.managers[1].acl(APP).check("alice", Right.USE)


class TestSignedAdministration:
    def _principal(self, name, seed):
        return Principal(name, generate_keypair(bits=128, rng=random.Random(seed)))

    def test_signed_request_accepted(self):
        harness = AdminHarness(signed=True)
        root_principal = self._principal("root", 1)
        harness.authenticator.register(root_principal)
        root = harness.client("root", principal=root_principal)
        result = root.add_process("m0", APP, "alice")
        harness.run(10.0)
        assert result.value.accepted

    def test_unsigned_request_rejected(self):
        harness = AdminHarness(signed=True)
        root = harness.client("root")  # no principal
        result = root.add_process("m0", APP, "alice")
        harness.run(10.0)
        assert not result.value.accepted
        assert "unsigned" in result.value.reason

    def test_forged_identity_rejected(self):
        """An attacker signs with their own key but claims 'root'."""
        harness = AdminHarness(signed=True)
        root_principal = self._principal("root", 1)
        attacker_principal = self._principal("attacker", 2)
        harness.authenticator.register(root_principal)
        harness.authenticator.register(attacker_principal)
        forger = harness.client("root", principal=attacker_principal)
        result = forger.add_process("m0", APP, "crony")
        harness.run(10.0)
        assert not result.value.accepted
        assert not harness.managers[0].acl(APP).check("crony", Right.USE)


class TestStableStore:
    def test_basic_semantics(self):
        store = StableStore()
        store.write("k", [1, 2])
        assert store.read("k") == [1, 2]
        assert store.read("missing", "d") == "d"
        assert "k" in store and len(store) == 1
        assert store.delete("k") and not store.delete("k")

    def test_copy_on_write_and_read(self):
        store = StableStore()
        value = {"inner": [1]}
        store.write("k", value)
        value["inner"].append(2)  # mutating after write must not leak
        first = store.read("k")
        assert first == {"inner": [1]}
        first["inner"].append(3)  # mutating the read copy must not leak
        assert store.read("k") == {"inner": [1]}

    def test_prefix_keys(self):
        store = StableStore()
        store.write("acl:a:u", 1)
        store.write("acl:b:v", 2)
        store.write("counter", 3)
        assert store.keys("acl:") == ["acl:a:u", "acl:b:v"]

    def test_manager_state_survives_crash_via_store(self):
        harness = AdminHarness(with_store=True)
        root = harness.client("root")
        result = root.add_process("m0", APP, "alice")
        harness.run(10.0)
        assert result.value.accepted
        manager = harness.managers[0]
        manager.crash()
        # The in-memory ACL is genuinely gone...
        assert not manager.acl(APP).check("alice", Right.USE)
        assert not manager.acl(APP).check("root", Right.MANAGE)
        # ...and comes back from disk on recovery.
        manager.recover()
        harness.run(10.0)
        assert manager.acl(APP).check("alice", Right.USE)
        assert manager.acl(APP).check("root", Right.MANAGE)
        assert not manager.recovering

    def test_store_backed_recovery_merges_missed_updates(self):
        harness = AdminHarness(with_store=True)
        root = harness.client("root")
        harness.managers[2].crash()
        result = root.add_process("m0", APP, "late-news")
        harness.run(10.0)
        assert result.value.accepted
        harness.managers[2].recover()
        harness.run(10.0)
        assert harness.managers[2].acl(APP).check("late-news", Right.USE)
        # The resynced entry was persisted too.
        store = harness.stores["m2"]
        assert any("late-news" in key for key in store.keys("acl:"))
