"""Tests for ACL_cache(A) — the Figure 3 data structure."""

from __future__ import annotations

from repro.core.cache import ACLCache, CacheEntry
from repro.core.rights import Right, Version


def entry(user="u", right=Right.USE, limit=100.0, counter=1):
    return CacheEntry(user=user, right=right, limit=limit, version=Version(counter, "m"))


class TestLookup:
    def test_miss_on_empty(self):
        cache = ACLCache("app")
        result = cache.lookup("u", Right.USE, now_local=0.0)
        assert not result.hit and not result.expired
        assert cache.misses == 1

    def test_hit_before_limit(self):
        cache = ACLCache("app")
        cache.store(entry(limit=50.0))
        result = cache.lookup("u", Right.USE, now_local=49.9)
        assert result.hit
        assert result.entry.limit == 50.0
        assert cache.hits == 1

    def test_expired_at_limit(self):
        """Figure 3 allows only while Time() < limit — the boundary
        instant itself is expired."""
        cache = ACLCache("app")
        cache.store(entry(limit=50.0))
        result = cache.lookup("u", Right.USE, now_local=50.0)
        assert not result.hit and result.expired

    def test_expired_entry_removed(self):
        cache = ACLCache("app")
        cache.store(entry(limit=50.0))
        cache.lookup("u", Right.USE, now_local=60.0)
        assert len(cache) == 0
        # The followup lookup is a plain miss, not another expiry.
        followup = cache.lookup("u", Right.USE, now_local=61.0)
        assert not followup.expired
        assert cache.expirations == 1

    def test_rights_cached_separately(self):
        cache = ACLCache("app")
        cache.store(entry(right=Right.USE))
        assert not cache.lookup("u", Right.MANAGE, 0.0).hit


class TestStoreAndFlush:
    def test_store_refreshes_limit(self):
        cache = ACLCache("app")
        cache.store(entry(limit=10.0))
        cache.store(entry(limit=99.0, counter=2))
        assert cache.lookup("u", Right.USE, 50.0).hit

    def test_flush_specific_right(self):
        cache = ACLCache("app")
        cache.store(entry(right=Right.USE))
        cache.store(entry(right=Right.MANAGE))
        assert cache.flush("u", Right.USE) == 1
        assert len(cache) == 1

    def test_flush_all_rights_of_user(self):
        cache = ACLCache("app")
        cache.store(entry(right=Right.USE))
        cache.store(entry(right=Right.MANAGE))
        cache.store(entry(user="other"))
        assert cache.flush("u") == 2
        assert len(cache) == 1

    def test_flush_missing_is_noop(self):
        """Figure 2's note: removing a non-existent right is a no-op."""
        cache = ACLCache("app")
        assert cache.flush("ghost") == 0
        assert cache.flush("ghost", Right.USE) == 0

    def test_clear(self):
        cache = ACLCache("app")
        cache.store(entry())
        cache.clear()
        assert len(cache) == 0


class TestPurge:
    def test_purge_removes_only_expired(self):
        cache = ACLCache("app")
        cache.store(entry(user="old", limit=10.0))
        cache.store(entry(user="fresh", limit=100.0))
        removed = cache.purge_expired(now_local=50.0)
        assert removed == 1
        assert cache.lookup("fresh", Right.USE, 50.0).hit

    def test_purge_empty(self):
        assert ACLCache("app").purge_expired(0.0) == 0

    def test_entries_listing(self):
        cache = ACLCache("app")
        cache.store(entry(user="a"))
        cache.store(entry(user="b"))
        assert {e.user for e in cache.entries()} == {"a", "b"}
