"""Tests for the AccessControlSystem builder and the name service."""

from __future__ import annotations

import pytest

from repro.core.messages import NameLookup
from repro.core.name_service import TrustedNameService
from repro.core.policy import AccessPolicy
from repro.core.rights import Right
from repro.core.system import AccessControlSystem


class TestBuilder:
    def test_default_construction(self):
        system = AccessControlSystem()
        assert system.n_managers == 5
        assert system.n_hosts == 10
        assert system.applications == ("app",)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            AccessControlSystem(n_managers=0)
        with pytest.raises(ValueError):
            AccessControlSystem(n_hosts=-1)
        with pytest.raises(ValueError):
            AccessControlSystem(applications=())

    def test_policy_checked_against_manager_count(self):
        with pytest.raises(ValueError):
            AccessControlSystem(
                n_managers=2, policy=AccessPolicy(check_quorum=3)
            )

    def test_all_nodes_registered(self):
        system = AccessControlSystem(n_managers=3, n_hosts=2)
        assert set(system.network.addresses()) == {"m0", "m1", "m2", "h0", "h1"}

    def test_managers_know_each_application(self):
        system = AccessControlSystem(
            n_managers=2, n_hosts=1, applications=("a", "b"),
            policy=AccessPolicy(check_quorum=2),
        )
        for manager in system.managers:
            assert manager.applications() == ["a", "b"]

    def test_seed_grant_reaches_all_managers(self):
        system = AccessControlSystem(n_managers=3, n_hosts=0)
        system.seed_grant("app", "u", Right.USE)
        for manager in system.managers:
            assert manager.acl("app").check("u", Right.USE)

    def test_seed_grants_plural(self):
        system = AccessControlSystem(n_managers=2, n_hosts=0,
                                     policy=AccessPolicy(check_quorum=2))
        system.seed_grants("app", ["a", "b", "c"])
        assert system.managers[0].acl("app").users_with(Right.USE) == ["a", "b", "c"]

    def test_clock_drift_bounded_by_policy(self):
        policy = AccessPolicy(clock_bound=1.2)
        system = AccessControlSystem(n_hosts=20, policy=policy)
        for host in system.hosts:
            assert host.clock.rate >= 1.0 / 1.2 - 1e-9

    def test_clock_drift_disabled(self):
        system = AccessControlSystem(n_hosts=3, clock_drift=False)
        assert all(host.clock.rate == 1.0 for host in system.hosts)

    def test_same_seed_same_behaviour(self):
        def run_once():
            system = AccessControlSystem(n_managers=3, n_hosts=1, seed=5)
            system.seed_grant("app", "u")
            process = system.hosts[0].request_access("app", "u")
            system.run(until=10)
            return process.value.latency

        assert run_once() == run_once()

    def test_failure_injectors_created(self):
        system = AccessControlSystem(
            n_hosts=2, host_failures=(100.0, 10.0), manager_failures=(200.0, 10.0)
        )
        assert system.host_injector is not None
        assert system.manager_injector is not None

    def test_register_application_later(self):
        system = AccessControlSystem(n_managers=3, n_hosts=1)
        system.register_application("late-app")
        system.seed_grant("late-app", "u")
        process = system.hosts[0].request_access("late-app", "u")
        system.run(until=10)
        assert process.value.allowed

    def test_reachable_managers_ground_truth(self):
        system = AccessControlSystem(n_managers=4, n_hosts=1)
        assert system.reachable_managers_from(0) == 4
        system.managers[0].crash()
        assert system.reachable_managers_from(0) == 3


class TestNameServiceNode:
    def test_register_and_lookup(self):
        service = TrustedNameService()
        service.register("app", ("m0", "m1"))
        assert service.managers_of("app") == ("m0", "m1")
        assert service.managers_of("ghost") == ()

    def test_empty_manager_set_rejected(self):
        with pytest.raises(ValueError):
            TrustedNameService().register("app", ())

    def test_deregister(self):
        service = TrustedNameService()
        service.register("app", ("m0",))
        service.deregister("app")
        assert service.managers_of("app") == ()

    def test_system_wires_name_service(self):
        system = AccessControlSystem(
            n_managers=3, n_hosts=1, use_name_service=True
        )
        system.seed_grant("app", "u")
        process = system.hosts[0].request_access("app", "u")
        system.run(until=10)
        assert process.value.allowed
        assert system.name_service.lookups_served == 1

    def test_manager_set_change_visible_after_ttl(self):
        """Section 3.2: "if the set of managers changes, a scheme
        similar to the time-based expiration ... can be used to trigger
        a new query to the name service."""
        policy = AccessPolicy(
            check_quorum=1, name_service_ttl=5.0, expiry_bound=1.0,
            max_attempts=2, query_timeout=0.5, retry_backoff=0.1,
        )
        system = AccessControlSystem(
            n_managers=3, n_hosts=1, use_name_service=True, policy=policy
        )
        system.seed_grant("app", "u")
        first = system.hosts[0].request_access("app", "u")
        system.run(until=5)
        assert first.value.allowed
        # The manager set shrinks to just m2.
        system.name_service.register("app", ("m2",))
        system.run(until=20)  # TTL expires
        second = system.hosts[0].request_access("app", "u")
        system.run(until=30)
        assert second.value.allowed
        assert system.hosts[0]._ns_cache["app"][0] == ("m2",)


class TestSetAppPolicy:
    def test_installed_everywhere(self):
        from repro.core.policy import ExhaustedAction

        system = AccessControlSystem(
            n_managers=3, n_hosts=2, applications=("a", "b"),
            policy=AccessPolicy(check_quorum=2),
        )
        lenient = AccessPolicy(
            check_quorum=1, max_attempts=2,
            exhausted_action=ExhaustedAction.ALLOW,
        )
        system.set_app_policy("b", lenient)
        for host in system.hosts:
            assert host.policy_for("b") is lenient
            assert host.policy_for("a").check_quorum == 2
        for manager in system.managers:
            assert manager.policy_for("b") is lenient

    def test_validated_against_manager_count(self):
        system = AccessControlSystem(n_managers=2, n_hosts=1,
                                     policy=AccessPolicy(check_quorum=2))
        with pytest.raises(ValueError):
            system.set_app_policy("app", AccessPolicy(check_quorum=5))
