"""Sharded manager groups (``shards=K``) on the system builder.

Each group runs the unmodified quorum/freeze dissemination protocol
over its own manager set; applications are consistent-hashed onto
groups and hosts resolve ``Managers(A)`` through the ring.  K=1 must
remain the classic flat deployment, byte-identical to history.
"""

from __future__ import annotations

import pytest

from repro.core.policy import AccessPolicy
from repro.core.rights import Right
from repro.core.system import AccessControlSystem

APPS = ("stocks", "news", "mail", "calendar", "prints")


def make_sharded(**kwargs) -> AccessControlSystem:
    kwargs.setdefault("shards", 3)
    kwargs.setdefault("n_managers", 3)
    kwargs.setdefault("n_hosts", 3)
    kwargs.setdefault("applications", APPS)
    kwargs.setdefault("policy", AccessPolicy(check_quorum=2))
    kwargs.setdefault("seed", 7)
    return AccessControlSystem(**kwargs)


class TestFlatUnchanged:
    def test_k1_keeps_classic_addresses(self):
        system = AccessControlSystem(n_managers=3, n_hosts=1)
        assert system.manager_addrs == ("m0", "m1", "m2")
        assert system.group_addrs == (("m0", "m1", "m2"),)
        assert system.shard_router is None
        assert system.hosts[0].shard_router is None

    def test_k1_hosts_use_static_maps(self):
        system = AccessControlSystem(n_managers=3, n_hosts=1)
        assert system.hosts[0]._static_managers == {"app": ("m0", "m1", "m2")}

    def test_shard_count_validated(self):
        with pytest.raises(ValueError):
            AccessControlSystem(shards=0)


class TestShardedTopology:
    def test_group_addresses_and_sizes(self):
        system = make_sharded()
        assert len(system.group_addrs) == 3
        assert system.group_addrs[1] == ("s1m0", "s1m1", "s1m2")
        assert system.n_managers == 3  # per-group M
        assert len(system.managers) == 9
        assert [len(g) for g in system.manager_groups] == [3, 3, 3]

    def test_hosts_route_through_ring_not_static_maps(self):
        system = make_sharded()
        for host in system.hosts:
            assert host.shard_router is system.shard_router
            assert host._static_managers == {}

    def test_each_application_owned_by_exactly_one_group(self):
        system = make_sharded()
        for app in APPS:
            owners = [
                g
                for g, members in enumerate(system.manager_groups)
                if all(app in m.applications() for m in members)
            ]
            strangers = [
                g
                for g, members in enumerate(system.manager_groups)
                if any(app in m.applications() for m in members)
            ]
            assert owners == [system.group_index_for(app)]
            assert strangers == owners

    def test_routing_helpers_agree(self):
        system = make_sharded()
        for app in APPS:
            g = system.group_index_for(app)
            assert system.manager_addrs_for(app) == system.group_addrs[g]
            assert system.managers_for(app) == system.manager_groups[g]
            assert system.n_managers_for(app) == 3

    def test_applications_spread_over_multiple_groups(self):
        # Not a ring-balance assertion (test_sharding covers that) —
        # just that this fixture genuinely exercises >1 group.
        system = make_sharded()
        assert len({system.group_index_for(app) for app in APPS}) > 1

    def test_seed_grant_touches_only_owning_group(self):
        system = make_sharded(n_hosts=0)
        system.seed_grant("stocks", "alice")
        owning = system.group_index_for("stocks")
        for g, members in enumerate(system.manager_groups):
            for manager in members:
                if g == owning:
                    assert manager.acl("stocks").check("alice", Right.USE)
                else:
                    assert "stocks" not in manager.applications()


class TestShardedEndToEnd:
    def test_access_allowed_on_every_shard_with_oracles(self):
        system = make_sharded(check_invariants=True)
        for app in APPS:
            system.seed_grant(app, "alice")
        processes = [
            system.hosts[i % system.n_hosts].request_access(app, "alice")
            for i, app in enumerate(APPS)
        ]
        system.run(until=120.0)
        assert all(p.value.allowed for p in processes)
        assert system.checker.ok
        assert system.checker.finalize() == []

    def test_unknown_user_denied_everywhere(self):
        system = make_sharded(check_invariants=True)
        for app in APPS:
            system.seed_grant(app, "alice")
        processes = [
            system.hosts[0].request_access(app, "mallory") for app in APPS
        ]
        system.run(until=120.0)
        assert not any(p.value.allowed for p in processes)
        assert system.checker.finalize() == []

    def test_revocation_disseminates_within_owning_group(self):
        system = make_sharded(check_invariants=True)
        system.seed_grant("news", "bob")
        issuer = system.managers_for("news")[0]
        issuer.revoke("news", "bob", Right.USE)
        system.run(until=120.0)
        for manager in system.managers_for("news"):
            assert not manager.acl("news").check("bob", Right.USE)
        process = system.hosts[0].request_access("news", "bob")
        system.run(until=240.0)
        assert not process.value.allowed
        assert system.checker.finalize() == []

    def test_grant_issued_through_protocol(self):
        system = make_sharded(check_invariants=True)
        issuer = system.managers_for("mail")[0]
        issuer.add("mail", "carol", Right.USE)
        system.run(until=60.0)
        process = system.hosts[1].request_access("mail", "carol")
        system.run(until=120.0)
        assert process.value.allowed
        assert system.checker.finalize() == []


class TestShardedAdministration:
    def test_set_app_policy_installs_on_owning_group(self):
        system = make_sharded()
        lenient = AccessPolicy(check_quorum=1)
        system.set_app_policy("mail", lenient)
        for manager in system.managers_for("mail"):
            assert manager.policy_for("mail") is lenient
        other = next(app for app in APPS
                     if system.group_index_for(app)
                     != system.group_index_for("mail"))
        for manager in system.managers_for(other):
            assert manager.policy_for(other).check_quorum == 2

    def test_set_app_policy_validates_per_group_size(self):
        system = make_sharded()
        with pytest.raises(ValueError):
            system.set_app_policy("mail", AccessPolicy(check_quorum=4))

    def test_register_application_later(self):
        system = make_sharded()
        system.register_application("late-app")
        owners = system.managers_for("late-app")
        assert all("late-app" in m.applications() for m in owners)
        system.seed_grant("late-app", "dave")
        process = system.hosts[0].request_access("late-app", "dave")
        system.run(until=120.0)
        assert process.value.allowed

    def test_reachable_managers_scoped_to_group(self):
        system = make_sharded()
        assert system.reachable_managers_from(0) == 9
        assert system.reachable_managers_from(0, "stocks") == 3
        system.managers_for("stocks")[0].crash()
        assert system.reachable_managers_from(0, "stocks") == 2

    def test_repr_mentions_shards(self):
        assert "shards=3" in repr(make_sharded())
        assert "shards" not in repr(AccessControlSystem(n_hosts=0))
