"""End-to-end integration tests of the full protocol.

These exercise the properties the paper actually promises, across
multiple components at once: the Te revocation bound under partitions
and clock drift, quorum intersection during partial update propagation,
crash/recovery of both node classes, and combined failure scenarios.
"""

from __future__ import annotations

import pytest

from repro.core.host import DecisionReason
from repro.core.policy import AccessPolicy, DeltaMode, ExhaustedAction
from repro.core.rights import Right
from repro.core.system import AccessControlSystem
from repro.sim.failures import schedule_crash, schedule_recovery
from repro.sim.network import FixedLatency
from repro.sim.partitions import PairEpochModel, ScriptedConnectivity

APP = "app"


def build(policy=None, seed=0, n_managers=3, n_hosts=1, **kwargs):
    connectivity = kwargs.pop("connectivity", None) or ScriptedConnectivity()
    system = AccessControlSystem(
        n_managers=n_managers,
        n_hosts=n_hosts,
        applications=(APP,),
        policy=policy
        or AccessPolicy(
            check_quorum=2,
            expiry_bound=60.0,
            max_attempts=2,
            query_timeout=1.0,
            retry_backoff=0.5,
        ),
        connectivity=connectivity,
        latency=FixedLatency(0.05),
        seed=seed,
        **kwargs,
    )
    return system, connectivity


class TestRevocationBoundInvariant:
    """The paper's central guarantee, Section 3.2."""

    @pytest.mark.parametrize("clock_drift", [False, True])
    @pytest.mark.parametrize(
        "delta_mode", [DeltaMode.FULL_ROUND_TRIP, DeltaMode.HALF_ROUND_TRIP]
    )
    def test_no_access_after_te(self, clock_drift, delta_mode):
        te = 30.0
        policy = AccessPolicy(
            check_quorum=2,
            expiry_bound=te,
            clock_bound=1.1,
            max_attempts=1,
            delta_mode=delta_mode,
            query_timeout=1.0,
        )
        system, connectivity = build(
            policy=policy, clock_drift=clock_drift, seed=13
        )
        host = system.hosts[0]
        system.seed_grant(APP, "alice")
        warm = host.request_access(APP, "alice")
        system.run(until=5.0)
        assert warm.value.allowed

        connectivity.isolate(host.address, system.manager_addrs)
        revoke_at = system.env.now
        system.managers[0].revoke(APP, "alice")

        while system.env.now < revoke_at + 2 * te:
            started = system.env.now
            probe = host.request_access(APP, "alice")
            system.run(until=system.env.now + 0.5)
            if probe.triggered and probe.value.allowed:
                allowed_at = started + probe.value.latency
                assert allowed_at < revoke_at + te
            system.run(until=system.env.now + 0.5)

    def test_revoke_in_flight_grant_race(self):
        """A grant response already in flight when the revocation is
        issued must not extend access beyond Te."""
        te = 20.0
        policy = AccessPolicy(
            check_quorum=2, expiry_bound=te, max_attempts=1, query_timeout=1.0
        )
        system, connectivity = build(policy=policy, seed=3)
        host = system.hosts[0]
        system.seed_grant(APP, "alice")
        # Kick off a check; revoke while responses are in flight.
        probe = host.request_access(APP, "alice")
        revoke_at = system.env.now
        system.managers[0].revoke(APP, "alice")
        system.run(until=revoke_at + 2 * te)
        if probe.value.allowed:
            # The grant could legally win the race, but the cache entry
            # it created must die within Te (flush or expiry).
            final = host.request_access(APP, "alice")
            system.run(until=system.env.now + 5.0)
            assert not final.value.allowed


class TestQuorumIntersection:
    def test_check_quorum_sees_partially_propagated_revoke(self):
        """A revoke that reached only its update quorum must still
        dominate every check quorum (the M - C + 1 intersection)."""
        policy = AccessPolicy(
            check_quorum=2, expiry_bound=60.0, max_attempts=1, query_timeout=1.0
        )
        system, connectivity = build(policy=policy, n_managers=3)
        host = system.hosts[0]
        system.seed_grant(APP, "alice")
        # m2 never hears the revoke (partitioned from m0 and m1)...
        connectivity.set_down("m0", "m2")
        connectivity.set_down("m1", "m2")
        handle = system.managers[0].revoke(APP, "alice")
        system.run(until=5.0)
        assert handle.quorum.triggered  # m0 + m1 = update quorum of 2
        # ...but the host can reach all three managers.  Any check
        # quorum of 2 includes at least one of {m0, m1}.
        probe = host.request_access(APP, "alice")
        system.run(until=10.0)
        assert not probe.value.allowed
        assert probe.value.reason == DecisionReason.DENIED

    def test_add_visible_once_quorum_reached(self):
        policy = AccessPolicy(
            check_quorum=2, expiry_bound=60.0, max_attempts=1, query_timeout=1.0
        )
        system, connectivity = build(policy=policy)
        host = system.hosts[0]
        connectivity.set_down("m0", "m2")
        connectivity.set_down("m1", "m2")
        handle = system.managers[0].add(APP, "newbie")
        system.run(until=5.0)
        assert handle.quorum.triggered
        probe = host.request_access(APP, "newbie")
        system.run(until=10.0)
        assert probe.value.allowed


class TestHostRecovery:
    def test_host_refills_cache_after_recovery(self):
        """Section 3.4: "recovery ... is very easy since ACL_cache(A)
        can simply be initialized to null and refilled"."""
        system, _connectivity = build()
        host = system.hosts[0]
        system.seed_grant(APP, "alice")
        warm = host.request_access(APP, "alice")
        system.run(until=5.0)
        assert warm.value.allowed
        schedule_crash(system.env, host, at=10.0)
        schedule_recovery(system.env, host, at=20.0)
        system.run(until=25.0)
        assert len(host.cache_for(APP)) == 0
        refill = host.request_access(APP, "alice")
        system.run(until=30.0)
        assert refill.value.allowed
        assert refill.value.reason == DecisionReason.VERIFIED

    def test_users_fail_over_to_other_hosts(self):
        """"If a host in Hosts(A) fails, potential users ... simply
        have to locate a new host."""
        system, _connectivity = build(n_hosts=2)
        system.seed_grant(APP, "alice")
        system.hosts[0].crash()
        probe = system.hosts[1].request_access(APP, "alice")
        system.run(until=10.0)
        assert probe.value.allowed


class TestManagerRecovery:
    def test_failed_manager_is_transparent_to_hosts(self):
        """"The failure of a manager is equally easy to handle since
        hosts ... can simply contact another manager."""
        system, _connectivity = build()
        system.seed_grant(APP, "alice")
        system.managers[2].crash()
        probe = system.hosts[0].request_access(APP, "alice")
        system.run(until=10.0)
        assert probe.value.allowed  # C=2 still satisfiable

    def test_revoke_while_granting_manager_down_still_bounded(self):
        """A failed manager's grant table is a 'logical partition': the
        expiration mechanism must still bound the revocation."""
        te = 15.0
        policy = AccessPolicy(
            check_quorum=1, expiry_bound=te, max_attempts=1, query_timeout=1.0
        )
        system, connectivity = build(policy=policy)
        host = system.hosts[0]
        system.seed_grant(APP, "alice")
        # Host only reaches m0; m0's grant table records the host.
        connectivity.set_down("h0", "m1")
        connectivity.set_down("h0", "m2")
        warm = host.request_access(APP, "alice")
        system.run(until=3.0)
        assert warm.value.allowed
        # m0 crashes, losing its grant table; m1 issues the revoke.
        system.managers[0].crash()
        revoke_at = system.env.now
        system.managers[1].revoke(APP, "alice")
        # Nobody can flush h0's cache (m0 down, m1/m2 unaware of h0).
        # The entry must still die within Te.
        system.run(until=revoke_at + te + 2.0)
        probe = host.request_access(APP, "alice")
        system.run(until=system.env.now + 5.0)
        assert not probe.value.allowed

    def test_recovered_manager_serves_fresh_state(self):
        policy = AccessPolicy(
            check_quorum=1, expiry_bound=60.0, max_attempts=2, query_timeout=1.0
        )
        system, connectivity = build(policy=policy)
        system.seed_grant(APP, "alice")
        system.managers[0].crash()
        system.managers[1].revoke(APP, "alice")
        system.run(until=5.0)
        system.managers[0].recover()
        system.run(until=10.0)
        assert not system.managers[0].recovering
        # Host that can only reach the recovered manager sees the revoke.
        connectivity.set_down("h0", "m1")
        connectivity.set_down("h0", "m2")
        probe = system.hosts[0].request_access(APP, "alice")
        system.run(until=20.0)
        assert not probe.value.allowed


class TestChaos:
    def test_long_run_under_churn_has_no_te_violations(self):
        """A randomized soak: epoch partitions + manager updates; the
        Te invariant must hold throughout."""
        te = 40.0
        policy = AccessPolicy(
            check_quorum=2,
            expiry_bound=te,
            clock_bound=1.1,
            max_attempts=2,
            query_timeout=1.0,
            retry_backoff=0.5,
        )
        system, _ = build(
            policy=policy,
            seed=99,
            n_hosts=3,
            connectivity=PairEpochModel(pi=0.2, mean_outage=30.0),
        )
        system.seed_grant(APP, "alice")
        revoked_at = {"t": None}

        def churn():
            yield system.env.timeout(50.0)
            revoked_at["t"] = system.env.now
            system.managers[1].revoke(APP, "alice")
            yield system.env.timeout(100.0)
            system.managers[2].add(APP, "alice")

        system.env.process(churn(), name="churn")
        violations = []

        def prober(host):
            while system.env.now < 300.0:
                started = system.env.now
                decision = yield host.request_access(APP, "alice")
                if decision.allowed and revoked_at["t"] is not None:
                    decided = started + decision.latency
                    # Legal if before revoke+Te or after the re-grant.
                    if revoked_at["t"] + te < decided < 150.0:
                        violations.append(decided)
                yield system.env.timeout(3.0)

        for host in system.hosts:
            system.env.process(prober(host), name=f"probe:{host.address}")
        system.run(until=320.0)
        assert violations == []


class TestLostRevocationAnomaly:
    """Regression for a real LWW anomaly found by seed-sweeping chaos
    runs: with pure Lamport counters, a manager that has not yet
    received an earlier committed grant could issue a revocation with a
    *lower* version, which then permanently lost the merge — a lost
    revocation.  Hybrid logical clocks (version counters dominated by
    physical milliseconds) fix it: a later-in-real-time operation
    always wins once clocks agree within skew."""

    def test_revoke_from_stale_manager_still_wins(self):
        policy = AccessPolicy(
            check_quorum=2, expiry_bound=30.0, max_attempts=1,
            query_timeout=1.0, update_retry_interval=1.0,
        )
        system, connectivity = build(policy=policy, n_managers=3)
        # m2 is partitioned while m0 commits a grant (quorum m0+m1).
        connectivity.set_down("m0", "m2")
        connectivity.set_down("m1", "m2")
        grant = system.managers[0].add(APP, "victim")
        system.run(until=5.0)
        assert grant.quorum.triggered
        assert not system.managers[2].acl(APP).check("victim", Right.USE)

        # Much later, STALE m2 (which never saw the grant) revokes.
        system.run(until=60.0)
        connectivity.set_up("m0", "m2")
        connectivity.set_up("m1", "m2")
        revoke = system.managers[2].revoke(APP, "victim")
        system.run(until=90.0)
        assert revoke.complete.triggered
        assert grant.complete.triggered
        # The later revocation must win everywhere — with pure Lamport
        # counters m2's revoke carried a lower counter and lost.
        for manager in system.managers:
            assert not manager.acl(APP).check("victim", Right.USE), (
                manager.address
            )
        probe = system.hosts[0].request_access(APP, "victim")
        system.run(until=100.0)
        assert not probe.value.allowed

    def test_hlc_counter_dominates_physical_time(self):
        from repro.core.rights import hlc_counter

        assert hlc_counter(10.0, 0) == 10_000
        assert hlc_counter(10.0, 20_000) == 20_001  # lamport ahead
        assert hlc_counter(0.0, 0) == 1  # never zero


class TestFreezeStrategyBound:
    """The freeze strategy's version of the Te guarantee: grants issued
    before the freeze point live at most te = (Te - Ti)/b, so even a
    revocation that cannot disseminate (its issuer is the partitioned
    manager) is globally effective within Te."""

    def test_revoke_by_partitioned_manager_bounded_by_te(self):
        te_bound = 40.0
        policy = AccessPolicy(
            check_quorum=1,
            expiry_bound=te_bound,
            clock_bound=1.0,
            use_freeze=True,
            inaccessibility_period=10.0,
            ping_interval=2.0,
            max_attempts=1,
            query_timeout=1.0,
            cache_cleanup_interval=None,
        )
        system, connectivity = build(policy=policy, n_managers=3)
        host = system.hosts[0]
        system.seed_grant(APP, "alice")
        system.run(until=5.0)  # pings warm

        # t=10: m2 partitioned from its peers (hosts still reach all).
        connectivity.set_down("m2", "m0")
        connectivity.set_down("m2", "m1")
        system.run(until=10.0)
        # Host obtains a fresh grant from a not-yet-frozen manager.
        warm = host.request_access(APP, "alice")
        system.run(until=12.0)
        assert warm.value.allowed

        # t=15: the *partitioned* manager revokes; dissemination stalls.
        revoke_at = system.env.now + 3.0
        system.run(until=revoke_at)
        handle = system.managers[2].revoke(APP, "alice")

        last_allowed = None
        while system.env.now < revoke_at + 2 * te_bound:
            started = system.env.now
            probe = host.request_access(APP, "alice")
            system.run(until=system.env.now + 2.0)
            if probe.triggered and probe.value.allowed:
                last_allowed = started + probe.value.latency
        assert not handle.quorum.triggered  # freeze requires all acks
        assert last_allowed is not None
        assert last_allowed < revoke_at + te_bound
