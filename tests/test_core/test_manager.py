"""Tests for the manager protocol (Sections 3.1, 3.3, 3.4)."""

from __future__ import annotations

import pytest

from repro.core.host import AccessControlHost, DecisionReason
from repro.core.manager import AccessControlManager
from repro.core.policy import AccessPolicy, ExhaustedAction
from repro.core.rights import AclEntry, Right, Version
from repro.sim.clock import LocalClock
from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.partitions import ScriptedConnectivity
from repro.sim.trace import TraceKind, Tracer

APP = "app"


class ManagerHarness:
    def __init__(self, policy: AccessPolicy, n_managers: int = 3, n_hosts: int = 1):
        self.env = Environment()
        self.tracer = Tracer(self.env, keep_log=True)
        self.connectivity = ScriptedConnectivity()
        self.network = Network(
            self.env,
            connectivity=self.connectivity,
            latency=FixedLatency(0.05),
            tracer=self.tracer,
        )
        self.manager_addrs = tuple(f"m{i}" for i in range(n_managers))
        self.managers = []
        for addr in self.manager_addrs:
            manager = AccessControlManager(addr, policy)
            manager.manage(APP, self.manager_addrs)
            self.network.register(manager)
            self.managers.append(manager)
        self.hosts = []
        for i in range(n_hosts):
            host = AccessControlHost(
                f"h{i}",
                policy,
                managers={APP: self.manager_addrs},
                clock=LocalClock(self.env),
            )
            self.network.register(host)
            self.hosts.append(host)

    def grant_everywhere(self, user: str, counter: int = 1):
        entry = AclEntry(user, Right.USE, True, Version(counter, "~seed"))
        for manager in self.managers:
            manager.bootstrap(APP, [entry])

    def run(self, duration: float):
        self.env.run(until=self.env.now + duration)


def policy(**overrides) -> AccessPolicy:
    defaults = dict(
        check_quorum=2,
        expiry_bound=100.0,
        clock_bound=1.0,
        query_timeout=1.0,
        retry_backoff=0.5,
        update_retry_interval=1.0,
        revoke_retry_interval=1.0,
        cache_cleanup_interval=None,
    )
    defaults.update(overrides)
    return AccessPolicy(**defaults)


class TestConfiguration:
    def test_manage_requires_self_in_set(self, env):
        manager = AccessControlManager("m9", policy())
        with pytest.raises(ValueError):
            manager.manage(APP, ("m0", "m1"))

    def test_acl_for_unmanaged_app_raises(self):
        manager = AccessControlManager("m0", policy())
        with pytest.raises(KeyError):
            manager.acl("ghost")

    def test_issue_on_unmanaged_app_raises(self):
        harness = ManagerHarness(policy())
        with pytest.raises(KeyError):
            harness.managers[0].add("ghost", "u")

    def test_issue_while_down_raises(self):
        harness = ManagerHarness(policy())
        harness.managers[0].crash()
        with pytest.raises(RuntimeError):
            harness.managers[0].add(APP, "u")

    def test_applications_listing(self):
        harness = ManagerHarness(policy())
        assert harness.managers[0].applications() == [APP]


class TestUpdateQuorum:
    def test_add_reaches_quorum_and_full_propagation(self):
        harness = ManagerHarness(policy(check_quorum=2))  # update quorum = 2
        handle = harness.managers[0].add(APP, "u")
        harness.run(5.0)
        assert handle.quorum.triggered
        assert handle.complete.triggered
        for manager in harness.managers:
            assert manager.acl(APP).check("u", Right.USE)

    def test_quorum_blocks_until_enough_peers(self):
        """Update quorum M-C+1 = 3 with one peer unreachable: the
        quorum event waits for the partition to heal."""
        harness = ManagerHarness(policy(check_quorum=1))  # update quorum = 3
        harness.connectivity.set_down("m0", "m2")
        handle = harness.managers[0].add(APP, "u")
        harness.run(10.0)
        assert not handle.quorum.triggered  # only m0 + m1 have it
        harness.connectivity.set_up("m0", "m2")
        harness.run(10.0)
        assert handle.quorum.triggered
        assert handle.complete.triggered

    def test_quorum_of_one_is_immediate(self):
        harness = ManagerHarness(policy(check_quorum=3))  # update quorum = 1
        harness.connectivity.isolate("m0", harness.manager_addrs)
        handle = harness.managers[0].add(APP, "u")
        assert handle.quorum.triggered  # self counts

    def test_persistent_dissemination_retries_until_heal(self):
        """Paper: "a manager issuing an update uses a persistent
        strategy ... it repeatedly transmits the update to every
        manager until it succeeds"."""
        harness = ManagerHarness(policy(check_quorum=2))
        harness.connectivity.set_down("m0", "m2")
        handle = harness.managers[0].add(APP, "u")
        harness.run(20.0)
        assert handle.quorum.triggered  # m0+m1 suffice for quorum 2
        assert not handle.complete.triggered  # m2 still missing
        assert not harness.managers[2].acl(APP).check("u", Right.USE)
        harness.connectivity.set_up("m0", "m2")
        harness.run(5.0)
        assert handle.complete.triggered
        assert harness.managers[2].acl(APP).check("u", Right.USE)

    def test_duplicate_update_delivery_acked_idempotently(self):
        harness = ManagerHarness(policy(check_quorum=2, update_retry_interval=0.2))
        # Slow the ack path: drop m1 -> m0 so acks are lost while
        # m0 -> m1 deliveries keep arriving (re-deliveries).
        harness.connectivity.set_down("m0", "m1")
        handle = harness.managers[0].add(APP, "u")
        harness.run(3.0)
        harness.connectivity.set_up("m0", "m1")
        harness.run(5.0)
        assert handle.complete.triggered
        assert harness.managers[1].acl(APP).check("u", Right.USE)

    def test_concurrent_updates_converge(self):
        harness = ManagerHarness(policy(check_quorum=2))
        harness.managers[0].add(APP, "u")
        harness.managers[1].revoke(APP, "u")
        harness.run(10.0)
        verdicts = {m.acl(APP).check("u", Right.USE) for m in harness.managers}
        assert len(verdicts) == 1  # all agree, whichever version won


class TestRevocationForwarding:
    def test_granting_manager_forwards_revoke(self):
        harness = ManagerHarness(policy())
        harness.grant_everywhere("alice")
        host = harness.hosts[0]
        check = host.request_access(APP, "alice")
        harness.run(5.0)
        assert check.value.allowed
        assert len(host.cache_for(APP)) == 1
        harness.managers[0].revoke(APP, "alice")
        harness.run(5.0)
        assert len(host.cache_for(APP)) == 0

    def test_peer_manager_forwards_for_its_own_grants(self):
        """The revocation originates at m0, but only m1 granted to the
        host; m1 must forward when the update reaches it."""
        harness = ManagerHarness(policy(check_quorum=1))
        harness.grant_everywhere("alice")
        host = harness.hosts[0]
        # Host can only reach m1: the grant lands in m1's table.
        harness.connectivity.set_down("h0", "m0")
        harness.connectivity.set_down("h0", "m2")
        check = host.request_access(APP, "alice")
        harness.run(5.0)
        assert check.value.allowed
        harness.managers[0].revoke(APP, "alice")
        harness.run(5.0)
        assert len(host.cache_for(APP)) == 0

    def test_forwarding_retries_until_host_reachable(self):
        harness = ManagerHarness(policy(expiry_bound=60.0))
        harness.grant_everywhere("alice")
        host = harness.hosts[0]
        check = host.request_access(APP, "alice")
        harness.run(5.0)
        assert check.value.allowed
        harness.connectivity.isolate("h0", harness.manager_addrs)
        harness.managers[0].revoke(APP, "alice")
        harness.run(10.0)
        assert len(host.cache_for(APP)) == 1  # unreachable, still cached
        harness.connectivity.reconnect("h0", harness.manager_addrs)
        harness.run(5.0)
        assert len(host.cache_for(APP)) == 0  # retry got through

    def test_forwarding_stops_after_expiry_deadline(self):
        """Section 3.4: the manager "can stop resending the message
        when the access right would have expired"."""
        harness = ManagerHarness(policy(expiry_bound=5.0, revoke_retry_interval=1.0))
        harness.grant_everywhere("alice")
        host = harness.hosts[0]
        check = host.request_access(APP, "alice")
        harness.run(2.0)
        assert check.value.allowed
        harness.connectivity.isolate("h0", harness.manager_addrs)
        harness.managers[0].revoke(APP, "alice")
        harness.run(30.0)
        forwards = harness.tracer.count(TraceKind.REVOKE_FORWARDED)
        # All three managers granted to h0, so up to 3 * ceil(Te/interval)
        # sends; crucially nowhere near the 3 * 30 a non-stopping
        # retransmitter would emit over the 30 s window.
        assert 3 <= forwards <= 18

    def test_no_forwarding_without_cached_grants(self):
        harness = ManagerHarness(policy())
        harness.grant_everywhere("alice")
        harness.managers[0].revoke(APP, "alice")
        harness.run(5.0)
        assert harness.tracer.count(TraceKind.REVOKE_FORWARDED) == 0


class TestQueryAnswering:
    def test_grant_records_host_in_table(self):
        harness = ManagerHarness(policy(check_quorum=1))
        harness.grant_everywhere("alice")
        host = harness.hosts[0]
        check = host.request_access(APP, "alice")
        harness.run(5.0)
        assert check.value.allowed
        granted_anywhere = any(
            ("alice", Right.USE) in m._grant_table[APP] for m in harness.managers
        )
        assert granted_anywhere

    def test_unmanaged_application_silent(self):
        harness = ManagerHarness(policy(max_attempts=1))
        host = harness.hosts[0]
        host.set_managers("other-app", harness.manager_addrs)
        process = host.request_access("other-app", "alice")
        harness.run(10.0)
        assert not process.value.allowed

    def test_stats(self):
        harness = ManagerHarness(policy())
        harness.grant_everywhere("alice")
        host = harness.hosts[0]
        host.request_access(APP, "alice")
        harness.run(5.0)
        total_queries = sum(m.stats["queries"] for m in harness.managers)
        assert total_queries == 3  # parallel fan-out to all managers
        assert sum(m.stats["grants"] for m in harness.managers) == 3


class TestFreezeStrategy:
    def freeze_policy(self, **overrides):
        defaults = dict(
            check_quorum=1,
            expiry_bound=100.0,
            use_freeze=True,
            inaccessibility_period=10.0,
            ping_interval=2.0,
            max_attempts=1,
            exhausted_action=ExhaustedAction.DENY,
            query_timeout=1.0,
            retry_backoff=0.5,
            cache_cleanup_interval=None,
        )
        defaults.update(overrides)
        return AccessPolicy(**defaults)

    def test_managers_freeze_after_ti(self):
        harness = ManagerHarness(self.freeze_policy())
        harness.grant_everywhere("alice")
        harness.run(5.0)  # pings flowing, everyone warm
        harness.connectivity.set_down("m2", "m0")
        harness.connectivity.set_down("m2", "m1")
        harness.run(20.0)  # > Ti + ping interval
        assert harness.tracer.count(TraceKind.MANAGER_FROZEN) >= 2
        check = harness.hosts[0].request_access(APP, "alice")
        harness.run(5.0)
        assert not check.value.allowed  # frozen managers stay silent

    def test_managers_unfreeze_after_heal(self):
        harness = ManagerHarness(self.freeze_policy())
        harness.grant_everywhere("alice")
        harness.run(5.0)
        harness.connectivity.set_down("m2", "m0")
        harness.connectivity.set_down("m2", "m1")
        harness.run(20.0)
        harness.connectivity.set_up("m2", "m0")
        harness.connectivity.set_up("m2", "m1")
        harness.run(10.0)
        assert harness.tracer.count(TraceKind.MANAGER_UNFROZEN) >= 2
        check = harness.hosts[0].request_access(APP, "alice")
        harness.run(5.0)
        assert check.value.allowed

    def test_no_freeze_while_all_reachable(self):
        harness = ManagerHarness(self.freeze_policy())
        harness.grant_everywhere("alice")
        harness.run(30.0)
        assert harness.tracer.count(TraceKind.MANAGER_FROZEN) == 0
        check = harness.hosts[0].request_access(APP, "alice")
        harness.run(5.0)
        assert check.value.allowed


class TestCrashRecovery:
    def test_acl_survives_crash(self):
        harness = ManagerHarness(policy())
        harness.grant_everywhere("alice")
        harness.managers[0].crash()
        assert harness.managers[0].acl(APP).check("alice", Right.USE)

    def test_grant_table_is_volatile(self):
        harness = ManagerHarness(policy(check_quorum=1))
        harness.grant_everywhere("alice")
        check = harness.hosts[0].request_access(APP, "alice")
        harness.run(5.0)
        assert check.value.allowed
        manager = harness.managers[0]
        manager.crash()
        assert not manager._grant_table[APP]

    def test_recovery_resyncs_missed_updates(self):
        harness = ManagerHarness(policy(check_quorum=2))
        harness.managers[2].crash()
        handle = harness.managers[0].add(APP, "u")
        harness.run(5.0)
        assert handle.quorum.triggered
        harness.managers[2].recover()
        harness.run(10.0)
        assert not harness.managers[2].recovering
        assert harness.managers[2].acl(APP).check("u", Right.USE)
        assert harness.tracer.count(TraceKind.MANAGER_RESYNCED) == 1

    def test_recovering_manager_does_not_answer_queries(self):
        harness = ManagerHarness(policy(check_quorum=1, max_attempts=1))
        harness.grant_everywhere("alice")
        manager = harness.managers[0]
        manager.crash()
        manager.recover()
        # Peers are unreachable: resync cannot finish.
        harness.connectivity.isolate("m0", harness.manager_addrs)
        # Host can only reach m0.
        harness.connectivity.set_down("h0", "m1")
        harness.connectivity.set_down("h0", "m2")
        check = harness.hosts[0].request_access(APP, "alice")
        harness.run(10.0)
        assert not check.value.allowed
        assert manager.recovering

    def test_single_manager_recovery_needs_no_peers(self):
        env = Environment()
        network = Network(env, latency=FixedLatency(0.05), tracer=Tracer(env))
        manager = AccessControlManager("m0", policy(check_quorum=1))
        manager.manage(APP, ("m0",))
        network.register(manager)
        manager.crash()
        manager.recover()
        assert not manager.recovering

    def test_mutual_recovery_does_not_deadlock(self):
        """Two managers recover simultaneously; sync answers must flow
        even while recovering."""
        harness = ManagerHarness(policy())
        harness.managers[0].crash()
        harness.managers[1].crash()
        harness.run(1.0)
        harness.managers[0].recover()
        harness.managers[1].recover()
        harness.run(10.0)
        assert not harness.managers[0].recovering
        assert not harness.managers[1].recovering
