"""Tests for the Figure 1 access-control wrapper and clients."""

from __future__ import annotations

import random

import pytest

from repro.auth.identity import Authenticator, Principal
from repro.auth.keys import generate_keypair
from repro.core.policy import AccessPolicy
from repro.core.system import AccessControlSystem
from repro.core.wrapper import Application
from repro.core.client import UserClient
from repro.sim.network import FixedLatency

APP = "echo"


class EchoApp(Application):
    """Echoes payloads; counts what it saw (must only see authorized)."""

    name = APP

    def __init__(self):
        self.seen = []

    def handle_request(self, user, payload):
        self.seen.append((user, payload))
        return f"echo:{payload}"


def build(authenticated: bool = False, seed: int = 0):
    system = AccessControlSystem(
        n_managers=3,
        n_hosts=1,
        applications=(APP,),
        policy=AccessPolicy(
            check_quorum=2, expiry_bound=60.0, max_attempts=2, query_timeout=1.0
        ),
        latency=FixedLatency(0.05),
        seed=seed,
    )
    host = system.hosts[0]
    app = EchoApp()
    host.deploy(app)
    auth = None
    if authenticated:
        auth = Authenticator()
        host.authenticator = auth
    return system, host, app, auth


class TestWrapper:
    def test_authorized_request_reaches_application(self):
        system, host, app, _ = build()
        system.seed_grant(APP, "alice")
        client = UserClient("c0", "alice")
        system.network.register(client)
        request = client.request(host.address, APP, "hello")
        system.run(until=10)
        assert request.value.allowed
        assert request.value.result == "echo:hello"
        assert app.seen == [("alice", "hello")]

    def test_unauthorized_request_never_reaches_application(self):
        system, host, app, _ = build()
        client = UserClient("c0", "mallory")
        system.network.register(client)
        request = client.request(host.address, APP, "sneak")
        system.run(until=10)
        assert not request.value.allowed
        assert app.seen == []

    def test_unknown_application_rejected(self):
        system, host, app, _ = build()
        system.register_application("ghost")
        system.seed_grant("ghost", "alice")
        client = UserClient("c0", "alice")
        system.network.register(client)
        request = client.request(host.address, "ghost", "x")
        system.run(until=10)
        assert not request.value.allowed
        assert "no such application" in request.value.reason

    def test_duplicate_deploy_rejected(self):
        _system, host, _app, _ = build()
        with pytest.raises(ValueError):
            host.deploy(EchoApp())

    def test_wrapped_app_contains_no_access_control(self):
        """The transparency property: the application class has no
        reference to policies, caches, or managers."""
        import inspect

        source = inspect.getsource(EchoApp)
        for term in ("policy", "cache", "manager", "quorum"):
            assert term not in source.lower()


class TestAuthenticatedWrapper:
    def _principal(self, name, seed):
        return Principal(name, generate_keypair(bits=128, rng=random.Random(seed)))

    def test_signed_request_from_registered_user_served(self):
        system, host, app, auth = build(authenticated=True)
        alice = self._principal("alice", 1)
        auth.register(alice)
        system.seed_grant(APP, "alice")
        client = UserClient("c0", "alice", principal=alice)
        system.network.register(client)
        request = client.request(host.address, APP, "hi")
        system.run(until=10)
        assert request.value.allowed
        assert app.seen == [("alice", "hi")]

    def test_unsigned_request_rejected_when_auth_required(self):
        system, host, app, auth = build(authenticated=True)
        system.seed_grant(APP, "alice")
        client = UserClient("c0", "alice")  # no principal -> unsigned
        system.network.register(client)
        request = client.request(host.address, APP, "hi")
        system.run(until=10)
        assert not request.value.allowed
        assert "unsigned" in request.value.reason
        assert app.seen == []

    def test_unregistered_signer_rejected(self):
        system, host, app, auth = build(authenticated=True)
        eve = self._principal("eve", 2)
        system.seed_grant(APP, "eve")
        client = UserClient("c0", "eve", principal=eve)
        system.network.register(client)
        request = client.request(host.address, APP, "hi")
        system.run(until=10)
        assert not request.value.allowed
        assert host.rejected_signatures == 1

    def test_signer_claiming_other_user_rejected(self):
        """bob signs a request whose user field says alice."""
        system, host, app, auth = build(authenticated=True)
        alice = self._principal("alice", 1)
        bob = self._principal("bob", 2)
        auth.register(alice)
        auth.register(bob)
        system.seed_grant(APP, "alice")
        client = UserClient("c0", "alice", principal=bob)  # forged identity
        system.network.register(client)
        request = client.request(host.address, APP, "hi")
        system.run(until=10)
        assert not request.value.allowed
        assert app.seen == []


class CrashingApp(Application):
    name = APP

    def handle_request(self, user, payload):
        raise RuntimeError("boom")


class DeployAwareApp(Application):
    name = "aware"

    def __init__(self):
        self.deployed_on = None

    def on_deploy(self, host):
        self.deployed_on = host.address


class TestWrapperRobustness:
    def test_application_exception_becomes_error_response(self):
        system, host, _app, _ = build()
        host.applications[APP] = CrashingApp()  # swap the echo app out
        system.seed_grant(APP, "alice")
        client = UserClient("c0", "alice")
        system.network.register(client)
        request = client.request(host.address, APP, "x")
        system.run(until=10)
        assert not request.value.allowed
        assert "application error: RuntimeError: boom" in request.value.reason
        assert host.application_errors == 1

    def test_host_survives_application_exception(self):
        system, host, _app, _ = build()
        host.applications[APP] = CrashingApp()
        system.seed_grant(APP, "alice")
        client = UserClient("c0", "alice")
        system.network.register(client)
        client.request(host.address, APP, "first")
        system.run(until=10)
        second = client.request(host.address, APP, "second")
        system.run(until=20)
        assert second.value is not None  # serving loop still alive
        assert host.application_errors == 2

    def test_on_deploy_hook_receives_host(self):
        _system, host, _app, _ = build()
        aware = DeployAwareApp()
        host.deploy(aware)
        assert aware.deployed_on == host.address

    def test_deploy_returns_the_application(self):
        _system, host, _app, _ = build()
        aware = DeployAwareApp()
        assert host.deploy(aware) is aware

    def test_unknown_message_type_raises(self):
        _system, host, _app, _ = build()
        with pytest.raises(NotImplementedError):
            host.handle_other_message("c0", object())

    def test_denied_response_carries_protocol_reason(self):
        system, host, app, _ = build()
        client = UserClient("c0", "mallory")
        system.network.register(client)
        request = client.request(host.address, APP, "x")
        system.run(until=10)
        assert "access denied" in request.value.reason
        assert "denied" in request.value.reason

    def test_base_application_interface_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Application().handle_request("alice", "x")


class TestClient:
    def test_timeout_when_host_unreachable(self):
        system, host, _app, _ = build()
        system.seed_grant(APP, "alice")
        client = UserClient("c0", "alice", request_timeout=5.0)
        system.network.register(client)
        host.crash()
        request = client.request(host.address, APP, "x")
        system.run(until=20)
        assert request.value.timed_out
        assert not request.value.allowed

    def test_latency_measured(self):
        system, host, _app, _ = build()
        system.seed_grant(APP, "alice")
        client = UserClient("c0", "alice")
        system.network.register(client)
        request = client.request(host.address, APP, "x")
        system.run(until=10)
        # client->host + (query round trip) + host->client = 4 hops min.
        assert request.value.latency >= 0.2

    def test_client_crash_clears_pending(self):
        system, host, _app, _ = build()
        system.seed_grant(APP, "alice")
        client = UserClient("c0", "alice")
        system.network.register(client)
        client.request(host.address, APP, "x")
        client.crash()
        assert client._pending == {}
