"""Tests for AccessPolicy — the paper's knobs."""

from __future__ import annotations

import pytest

from repro.core.policy import (
    UNBOUNDED_ATTEMPTS,
    AccessPolicy,
    DeltaMode,
    ExhaustedAction,
    QueryStrategy,
)


class TestValidation:
    def test_defaults_are_valid(self):
        AccessPolicy()

    def test_check_quorum_positive(self):
        with pytest.raises(ValueError):
            AccessPolicy(check_quorum=0)

    def test_te_positive(self):
        with pytest.raises(ValueError):
            AccessPolicy(expiry_bound=0.0)

    def test_clock_bound_at_least_one(self):
        with pytest.raises(ValueError):
            AccessPolicy(clock_bound=0.99)

    def test_attempts_positive_or_none(self):
        AccessPolicy(max_attempts=None)
        AccessPolicy(max_attempts=1)
        with pytest.raises(ValueError):
            AccessPolicy(max_attempts=0)

    def test_freeze_requires_positive_ti(self):
        with pytest.raises(ValueError):
            AccessPolicy(use_freeze=True, inaccessibility_period=0.0)

    def test_freeze_requires_ti_below_te(self):
        with pytest.raises(ValueError):
            AccessPolicy(
                use_freeze=True, inaccessibility_period=300.0, expiry_bound=300.0
            )

    def test_query_timeout_positive(self):
        with pytest.raises(ValueError):
            AccessPolicy(query_timeout=0.0)

    def test_negative_intervals_rejected(self):
        with pytest.raises(ValueError):
            AccessPolicy(retry_backoff=-1.0)
        with pytest.raises(ValueError):
            AccessPolicy(update_retry_interval=-1.0)

    def test_validate_for_manager_count(self):
        policy = AccessPolicy(check_quorum=4)
        policy.validate_for(4)
        with pytest.raises(ValueError):
            policy.validate_for(3)
        with pytest.raises(ValueError):
            policy.validate_for(0)


class TestDerived:
    def test_te_local_is_te_over_b(self):
        policy = AccessPolicy(expiry_bound=100.0, clock_bound=1.25)
        assert policy.te_local == pytest.approx(80.0)

    def test_te_local_with_freeze_subtracts_ti(self):
        """Section 3.3: Ti + te <= Te, with clock rates accounted for."""
        policy = AccessPolicy(
            expiry_bound=100.0,
            clock_bound=1.25,
            use_freeze=True,
            inaccessibility_period=20.0,
        )
        assert policy.te_local == pytest.approx(64.0)
        # Worst-case real time consumed: Ti + b * te == Te.
        assert 20.0 + 1.25 * policy.te_local == pytest.approx(100.0)

    def test_update_quorum_complements_check_quorum(self):
        policy = AccessPolicy(check_quorum=3)
        assert policy.update_quorum(10) == 8
        # Intersection: any C managers and any update quorum overlap.
        assert policy.check_quorum + policy.update_quorum(10) == 10 + 1

    def test_update_quorum_extremes(self):
        assert AccessPolicy(check_quorum=1).update_quorum(5) == 5
        assert AccessPolicy(check_quorum=5).update_quorum(5) == 1

    def test_effective_check_quorum_under_freeze(self):
        policy = AccessPolicy(
            check_quorum=3, use_freeze=True, inaccessibility_period=10.0
        )
        assert policy.effective_check_quorum == 1

    def test_required_responses_is_check_quorum(self):
        policy = AccessPolicy(check_quorum=3)
        assert policy.required_responses(5) == 3

    def test_required_responses_clamped_to_manager_set(self):
        # A stale name-service answer may yield fewer than C managers;
        # the round must still be completable against what exists.
        policy = AccessPolicy(check_quorum=3)
        assert policy.required_responses(2) == 2
        assert policy.required_responses(0) == 0

    def test_required_responses_under_freeze(self):
        policy = AccessPolicy(
            check_quorum=3, use_freeze=True, inaccessibility_period=10.0
        )
        assert policy.required_responses(5) == 1  # freeze: any one manager

    def test_with_copies(self):
        policy = AccessPolicy(check_quorum=2)
        changed = policy.with_(check_quorum=4)
        assert changed.check_quorum == 4
        assert policy.check_quorum == 2
        assert changed.expiry_bound == policy.expiry_bound


class TestPresets:
    def test_security_first(self):
        policy = AccessPolicy.security_first(n_managers=5)
        assert policy.check_quorum == 5
        assert policy.max_attempts is UNBOUNDED_ATTEMPTS
        assert policy.exhausted_action is ExhaustedAction.DENY
        assert policy.update_quorum(5) == 1  # any single manager revokes

    def test_availability_first(self):
        policy = AccessPolicy.availability_first(n_managers=5, attempts=4)
        assert policy.check_quorum == 1
        assert policy.max_attempts == 4
        assert policy.exhausted_action is ExhaustedAction.ALLOW

    def test_balanced(self):
        policy = AccessPolicy.balanced(n_managers=10)
        assert policy.check_quorum == 5
        policy = AccessPolicy.balanced(n_managers=7)
        assert policy.check_quorum == 4

    def test_preset_overrides(self):
        policy = AccessPolicy.balanced(n_managers=10, query_timeout=9.0)
        assert policy.query_timeout == 9.0


class TestEnums:
    def test_query_strategies(self):
        assert {QueryStrategy.SEQUENTIAL, QueryStrategy.PARALLEL} == set(QueryStrategy)

    def test_delta_modes(self):
        assert {DeltaMode.FULL_ROUND_TRIP, DeltaMode.HALF_ROUND_TRIP} == set(DeltaMode)
