"""Tests for rights, versions, and entries."""

from __future__ import annotations

import pytest

from repro.core.rights import AclEntry, Right, Version, ZERO_VERSION


class TestVersion:
    def test_counter_dominates(self):
        assert Version(2, "a") > Version(1, "z")

    def test_origin_breaks_ties(self):
        assert Version(1, "b") > Version(1, "a")
        assert Version(1, "a") < Version(1, "b")

    def test_total_order(self):
        versions = [Version(2, "a"), Version(1, "b"), Version(1, "a"), Version(3, "c")]
        ordered = sorted(versions)
        assert ordered == [
            Version(1, "a"),
            Version(1, "b"),
            Version(2, "a"),
            Version(3, "c"),
        ]

    def test_equality_and_hash(self):
        assert Version(1, "m") == Version(1, "m")
        assert hash(Version(1, "m")) == hash(Version(1, "m"))
        assert Version(1, "m") != Version(2, "m")

    def test_zero_version_precedes_all_real(self):
        assert ZERO_VERSION < Version(1, "")
        assert ZERO_VERSION < Version(1, "any")

    def test_str(self):
        assert str(Version(3, "m1")) == "3@m1"


class TestRight:
    def test_two_rights(self):
        assert {Right.USE, Right.MANAGE} == set(Right)

    def test_str(self):
        assert str(Right.USE) == "use"
        assert str(Right.MANAGE) == "manage"


class TestAclEntry:
    def test_dominates_by_version(self):
        older = AclEntry("u", Right.USE, True, Version(1, "a"))
        newer = AclEntry("u", Right.USE, False, Version(2, "a"))
        assert newer.dominates(older)
        assert not older.dominates(newer)

    def test_equal_versions_do_not_dominate(self):
        a = AclEntry("u", Right.USE, True, Version(1, "a"))
        b = AclEntry("u", Right.USE, True, Version(1, "a"))
        assert not a.dominates(b)

    def test_frozen(self):
        entry = AclEntry("u", Right.USE, True, Version(1, "a"))
        with pytest.raises(AttributeError):
            entry.granted = False  # type: ignore[misc]
