"""Model-based stateful test for :class:`repro.core.cache.ACLCache`.

The production cache keeps a lazy-deletion min-heap so expiry sweeps
are O(k log n); the reference model below is the obviously-correct
version — a plain dict plus linear scans.  Hypothesis drives random
interleavings of insert / lookup / revoke / expire / idle-purge /
compact and checks the two stay in lockstep, contents and counters
alike.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.cache import ACLCache, CacheEntry
from repro.core.rights import Right, Version

USERS = ("ann", "bob", "cyd")
RIGHTS = (Right.USE, Right.MANAGE)

users = st.sampled_from(USERS)
rights = st.sampled_from(RIGHTS)
clocks = st.integers(0, 60).map(float)
limits = st.integers(0, 80).map(float)


class CacheAgainstModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = ACLCache("app")
        self.entries = {}  # key -> CacheEntry (the model)
        self.last = {}  # key -> last-access local time
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.flushes = 0
        self.idle_evictions = 0

    # -- operations ---------------------------------------------------------
    @rule(
        user=users,
        right=rights,
        limit=limits,
        counter=st.integers(1, 9),
        now=st.one_of(st.none(), clocks),
    )
    def insert(self, user, right, limit, counter, now):
        entry = CacheEntry(
            user=user, right=right, limit=limit, version=Version(counter, "m0")
        )
        self.cache.store(entry, now_local=now)
        key = (user, right)
        self.entries[key] = entry
        if now is not None:
            self.last[key] = now
        else:
            self.last.setdefault(key, float("-inf"))

    @rule(user=users, right=rights, now=clocks)
    def lookup(self, user, right, now):
        result = self.cache.lookup(user, right, now)
        key = (user, right)
        expected = self.entries.get(key)
        if expected is None:
            assert result.entry is None and not result.expired
            self.misses += 1
        elif now < expected.limit:
            assert result.entry == expected and not result.expired
            self.hits += 1
            self.last[key] = now
        else:
            # Figure 3: "the access control tuple is removed and the
            # access is rechecked".
            assert result.entry is None and result.expired
            del self.entries[key]
            self.last.pop(key, None)
            self.expirations += 1

    @rule(user=users, right=st.one_of(st.none(), rights))
    def revoke(self, user, right):
        removed = self.cache.flush(user, right)
        if right is not None:
            keys = [(user, right)] if (user, right) in self.entries else []
        else:
            keys = [key for key in self.entries if key[0] == user]
        for key in keys:
            del self.entries[key]
            self.last.pop(key, None)
        assert removed == len(keys)
        self.flushes += len(keys)

    @rule(now=clocks)
    def expire(self, now):
        removed = self.cache.purge_expired(now)
        keys = [
            key for key, entry in self.entries.items() if entry.limit <= now
        ]
        for key in keys:
            del self.entries[key]
            self.last.pop(key, None)
        assert removed == len(keys)
        self.expirations += len(keys)

    @rule(now=clocks, ttl=st.integers(1, 40).map(float))
    def purge_idle(self, now, ttl):
        removed = self.cache.purge_idle(now, ttl)
        keys = [
            key
            for key in self.entries
            if now - self.last.get(key, float("-inf")) > ttl
        ]
        for key in keys:
            del self.entries[key]
            self.last.pop(key, None)
        assert removed == len(keys)
        self.idle_evictions += len(keys)

    @rule()
    def compact(self):
        # Heap compaction is an internal optimisation; behaviour must be
        # untouched wherever it lands in the interleaving.
        self.cache._compact_heap()

    @rule()
    def clear(self):
        self.cache.clear()
        self.entries.clear()
        self.last.clear()

    # -- lockstep invariants ------------------------------------------------
    @invariant()
    def contents_agree(self):
        actual = {(e.user, e.right): e for e in self.cache.entries()}
        assert actual == self.entries
        assert len(self.cache) == len(self.entries)

    @invariant()
    def counters_agree(self):
        assert self.cache.hits == self.hits
        assert self.cache.misses == self.misses
        assert self.cache.expirations == self.expirations
        assert self.cache.flushes == self.flushes
        assert self.cache.idle_evictions == self.idle_evictions

    @invariant()
    def last_access_agrees(self):
        for key in self.entries:
            recorded = self.cache.last_access(*key)
            expected = self.last.get(key, float("-inf"))
            if expected == float("-inf"):
                assert recorded is None
            else:
                assert recorded == expected


TestCacheAgainstModel = CacheAgainstModel.TestCase
TestCacheAgainstModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
