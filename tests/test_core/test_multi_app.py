"""Multi-application hosts with disjoint manager sets.

The paper scopes everything per application ("Access control of A is
assumed to be independent of other applications"); these tests pin that
independence down: one host serving two applications whose manager
sets do not overlap, with independent policies, caches, and failures.
"""

from __future__ import annotations

import pytest

from repro.core.host import AccessControlHost, DecisionReason
from repro.core.manager import AccessControlManager
from repro.core.policy import AccessPolicy
from repro.core.rights import AclEntry, Right, Version
from repro.sim.clock import LocalClock
from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.partitions import ScriptedConnectivity
from repro.sim.trace import Tracer


class DisjointHarness:
    """Host h0 serves app-a (managers a0, a1) and app-b (managers b0, b1)."""

    def __init__(self):
        self.env = Environment()
        self.tracer = Tracer(self.env)
        self.connectivity = ScriptedConnectivity()
        self.network = Network(
            self.env, connectivity=self.connectivity,
            latency=FixedLatency(0.02), tracer=self.tracer,
        )
        self.policy = AccessPolicy(
            check_quorum=2, expiry_bound=60.0, max_attempts=1,
            query_timeout=1.0, cache_cleanup_interval=None,
        )
        self.sets = {"app-a": ("a0", "a1"), "app-b": ("b0", "b1")}
        self.managers = {}
        for app, addrs in self.sets.items():
            for addr in addrs:
                manager = AccessControlManager(addr, self.policy)
                manager.manage(app, addrs)
                self.network.register(manager)
                self.managers[addr] = manager
        self.host = AccessControlHost(
            "h0", self.policy, managers=dict(self.sets),
            clock=LocalClock(self.env),
        )
        self.network.register(self.host)

    def grant(self, app: str, user: str):
        entry = AclEntry(user, Right.USE, True, Version(1, ""))
        for addr in self.sets[app]:
            self.managers[addr].bootstrap(app, [entry])

    def check(self, app: str, user: str, run_for: float = 10.0):
        process = self.host.request_access(app, user)
        self.env.run(until=self.env.now + run_for)
        return process.value


class TestDisjointManagerSets:
    def test_rights_do_not_leak_across_applications(self):
        harness = DisjointHarness()
        harness.grant("app-a", "alice")
        assert harness.check("app-a", "alice").allowed
        assert not harness.check("app-b", "alice").allowed

    def test_queries_go_only_to_the_apps_managers(self):
        harness = DisjointHarness()
        harness.grant("app-a", "alice")
        harness.check("app-a", "alice")
        assert harness.managers["a0"].stats["queries"] == 1
        assert harness.managers["b0"].stats["queries"] == 0

    def test_partitioned_app_does_not_affect_the_other(self):
        harness = DisjointHarness()
        harness.grant("app-a", "alice")
        harness.grant("app-b", "alice")
        # Cut the host off from app-b's managers only.
        harness.connectivity.isolate("h0", harness.sets["app-b"])
        assert harness.check("app-a", "alice").allowed
        blocked = harness.check("app-b", "alice")
        assert not blocked.allowed
        assert blocked.reason == DecisionReason.EXHAUSTED

    def test_revocation_scoped_to_one_application(self):
        harness = DisjointHarness()
        harness.grant("app-a", "alice")
        harness.grant("app-b", "alice")
        assert harness.check("app-a", "alice").allowed
        assert harness.check("app-b", "alice").allowed
        harness.managers["a0"].revoke("app-a", "alice")
        harness.env.run(until=harness.env.now + 10.0)
        assert not harness.check("app-a", "alice").allowed
        # app-b's cached grant is untouched.
        assert harness.check("app-b", "alice").reason == DecisionReason.CACHE

    def test_caches_are_per_application(self):
        harness = DisjointHarness()
        harness.grant("app-a", "alice")
        harness.grant("app-b", "alice")
        harness.check("app-a", "alice")
        harness.check("app-b", "alice")
        assert len(harness.host.cache_for("app-a")) == 1
        assert len(harness.host.cache_for("app-b")) == 1
        harness.host.cache_for("app-a").flush("alice")
        assert len(harness.host.cache_for("app-b")) == 1


class TestCliSeedOption:
    def test_seed_forwarded_to_stochastic_experiments(self, capsys):
        from repro.experiments.cli import main

        assert main(["--seed", "7", "latency"]) == 0
        out = capsys.readouterr().out
        assert "seed=7" in out

    def test_seed_ignored_by_analytic_experiments(self, capsys):
        from repro.experiments.cli import main

        assert main(["--seed", "7", "table1"]) == 0
        out = capsys.readouterr().out
        assert "0.38742" in out  # unchanged analytic output
