"""Tests for idle-entry eviction (Section 3.2's memory optimisation)."""

from __future__ import annotations

import pytest

from repro.core.cache import ACLCache, CacheEntry
from repro.core.host import DecisionReason
from repro.core.policy import AccessPolicy
from repro.core.rights import Right, Version
from repro.core.system import AccessControlSystem
from repro.sim.network import FixedLatency

APP = "app"


def entry(user, limit=1_000.0):
    return CacheEntry(user=user, right=Right.USE, limit=limit,
                      version=Version(1, "m"))


class TestCachePurgeIdle:
    def test_idle_entry_evicted_despite_validity(self):
        cache = ACLCache(APP)
        cache.store(entry("sleepy"), now_local=0.0)
        assert cache.purge_idle(now_local=100.0, idle_ttl=50.0) == 1
        assert len(cache) == 0
        assert cache.idle_evictions == 1

    def test_recently_used_entry_kept(self):
        cache = ACLCache(APP)
        cache.store(entry("busy"), now_local=0.0)
        cache.lookup("busy", Right.USE, now_local=90.0)  # refreshes access
        assert cache.purge_idle(now_local=100.0, idle_ttl=50.0) == 0
        assert len(cache) == 1

    def test_lookup_refreshes_last_access(self):
        cache = ACLCache(APP)
        cache.store(entry("u"), now_local=0.0)
        cache.lookup("u", Right.USE, now_local=40.0)
        assert cache.last_access("u", Right.USE) == 40.0

    def test_background_store_does_not_count_as_access(self):
        """A refresh-ahead store (now_local=None) must not keep an
        otherwise idle entry alive."""
        cache = ACLCache(APP)
        cache.store(entry("u"), now_local=0.0)
        cache.store(entry("u", limit=2_000.0))  # background refresh
        assert cache.last_access("u", Right.USE) == 0.0
        assert cache.purge_idle(now_local=100.0, idle_ttl=50.0) == 1

    def test_untracked_entry_counts_as_idle(self):
        cache = ACLCache(APP)
        cache.store(entry("mystery"))  # no access time known
        assert cache.purge_idle(now_local=1.0, idle_ttl=0.5) == 1

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            ACLCache(APP).purge_idle(0.0, idle_ttl=0.0)

    def test_flush_and_clear_drop_access_times(self):
        cache = ACLCache(APP)
        cache.store(entry("u"), now_local=5.0)
        cache.flush("u")
        assert cache.last_access("u", Right.USE) is None
        cache.store(entry("v"), now_local=5.0)
        cache.clear()
        assert cache.last_access("v", Right.USE) is None


class TestHostIdleEviction:
    def build(self):
        policy = AccessPolicy(
            check_quorum=2,
            expiry_bound=10_000.0,  # entries essentially never expire
            clock_bound=1.0,
            idle_eviction_ttl=30.0,
            cache_cleanup_interval=10.0,
            query_timeout=1.0,
        )
        system = AccessControlSystem(
            n_managers=3, n_hosts=1, policy=policy,
            latency=FixedLatency(0.02), clock_drift=False, seed=1,
        )
        system.seed_grants(APP, ["hot", "cold"])
        return system

    def test_idle_user_evicted_active_user_kept(self):
        system = self.build()
        host = system.hosts[0]
        for user in ("hot", "cold"):
            process = host.request_access(APP, user)
        system.run(until=5.0)
        assert len(host.cache_for(APP)) == 2

        def keep_hot_warm():
            while system.env.now < 100.0:
                yield host.request_access(APP, "hot")
                yield system.env.timeout(5.0)

        system.env.process(keep_hot_warm(), name="warmer")
        system.run(until=100.0)
        cache = host.cache_for(APP)
        assert cache.lookup("hot", Right.USE, host.clock.now()).hit
        assert not any(e.user == "cold" for e in cache.entries())
        assert cache.idle_evictions >= 1

    def test_evicted_user_reverifies_on_return(self):
        system = self.build()
        host = system.hosts[0]
        first = host.request_access(APP, "cold")
        system.run(until=5.0)
        assert first.value.reason == DecisionReason.VERIFIED
        system.run(until=80.0)  # idle long enough to be evicted
        back = host.request_access(APP, "cold")
        system.run(until=90.0)
        assert back.value.allowed
        assert back.value.reason == DecisionReason.VERIFIED  # not cache
