"""Tests for the optional protocol extensions: refresh-ahead caching,
negative caching, and Byzantine-manager tolerance (footnote 2)."""

from __future__ import annotations

import random

import pytest

from repro.auth.identity import Authenticator, Principal
from repro.auth.keys import generate_keypair
from repro.core.byzantine import (
    DENY_ALL,
    FLIP,
    GRANT_ALL,
    LyingManager,
    required_quorum,
)
from repro.core.host import AccessControlHost, DecisionReason
from repro.core.manager import AccessControlManager
from repro.core.policy import AccessPolicy, ExhaustedAction
from repro.core.rights import AclEntry, Right, Version
from repro.sim.clock import LocalClock
from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.partitions import ScriptedConnectivity
from repro.sim.trace import TraceKind, Tracer

APP = "app"


class ExtensionHarness:
    """Hosts + managers with optional liars and signatures."""

    def __init__(
        self,
        policy: AccessPolicy,
        n_managers: int = 3,
        liars: int = 0,
        lie_mode: str = GRANT_ALL,
        signed: bool = False,
    ):
        self.env = Environment()
        self.tracer = Tracer(self.env, keep_log=True)
        self.connectivity = ScriptedConnectivity()
        self.network = Network(
            self.env,
            connectivity=self.connectivity,
            latency=FixedLatency(0.05),
            tracer=self.tracer,
        )
        self.manager_addrs = tuple(f"m{i}" for i in range(n_managers))
        authenticator = Authenticator() if signed else None
        self.managers = []
        for index, addr in enumerate(self.manager_addrs):
            principal = None
            if signed:
                principal = Principal(
                    addr, generate_keypair(bits=128, rng=random.Random(index))
                )
                authenticator.register(principal)
            # The *last* `liars` managers lie.
            if index >= n_managers - liars:
                manager = LyingManager(
                    addr, policy, mode=lie_mode, principal=principal
                )
            else:
                manager = AccessControlManager(addr, policy, principal=principal)
            manager.manage(APP, self.manager_addrs)
            self.network.register(manager)
            self.managers.append(manager)
        self.host = AccessControlHost(
            "h0",
            policy,
            managers={APP: self.manager_addrs},
            clock=LocalClock(self.env),
            manager_authenticator=authenticator,
        )
        self.network.register(self.host)

    def grant_everywhere(self, user: str, counter: int = 1):
        entry = AclEntry(user, Right.USE, True, Version(counter, ""))
        for manager in self.managers:
            manager.bootstrap(APP, [entry])

    def check(self, user: str, run_for: float = 30.0):
        process = self.host.request_access(APP, user)
        self.env.run(until=self.env.now + run_for)
        return process.value


def policy(**overrides) -> AccessPolicy:
    defaults = dict(
        check_quorum=2,
        expiry_bound=100.0,
        clock_bound=1.0,
        query_timeout=1.0,
        retry_backoff=0.5,
        max_attempts=2,
        cache_cleanup_interval=None,
    )
    defaults.update(overrides)
    return AccessPolicy(**defaults)


class TestRefreshAhead:
    def test_entry_refreshed_before_expiry(self):
        harness = ExtensionHarness(
            policy(
                expiry_bound=20.0,
                refresh_ahead_fraction=0.5,
                refresh_check_interval=2.0,
            )
        )
        harness.grant_everywhere("alice")
        first = harness.check("alice", run_for=5.0)
        assert first.reason == DecisionReason.VERIFIED
        # Ride past several expiry periods: the refresher keeps the
        # entry alive, so every user-facing access is a cache hit.
        for _ in range(5):
            harness.env.run(until=harness.env.now + 15.0)
            probe = harness.check("alice", run_for=2.0)
            assert probe.reason == DecisionReason.CACHE, probe
        assert harness.host.stats["refreshes"] >= 4

    def test_refresh_respects_revocation(self):
        """Refresh-ahead must not resurrect a revoked right."""
        harness = ExtensionHarness(
            policy(
                expiry_bound=20.0,
                refresh_ahead_fraction=0.5,
                refresh_check_interval=2.0,
            )
        )
        harness.grant_everywhere("alice")
        harness.check("alice", run_for=5.0)
        harness.managers[0].revoke(APP, "alice")
        harness.env.run(until=harness.env.now + 40.0)
        probe = harness.check("alice", run_for=5.0)
        assert not probe.allowed

    def test_no_refresh_without_opt_in(self):
        harness = ExtensionHarness(policy(expiry_bound=20.0))
        harness.grant_everywhere("alice")
        harness.check("alice", run_for=5.0)
        harness.env.run(until=harness.env.now + 60.0)
        assert harness.host.stats["refreshes"] == 0


class TestNegativeCache:
    def test_denial_served_from_cache(self):
        harness = ExtensionHarness(policy(deny_cache_ttl=30.0))
        first = harness.check("mallory")
        assert first.reason == DecisionReason.DENIED
        second = harness.check("mallory", run_for=5.0)
        assert second.reason == DecisionReason.DENY_CACHED
        assert second.latency == 0.0
        assert harness.host.stats["deny_cache_hits"] == 1

    def test_denial_expires_after_ttl(self):
        harness = ExtensionHarness(policy(deny_cache_ttl=10.0))
        harness.check("mallory")
        harness.env.run(until=harness.env.now + 15.0)
        probe = harness.check("mallory")
        assert probe.reason == DecisionReason.DENIED  # re-verified

    def test_add_visible_after_ttl_at_most(self):
        harness = ExtensionHarness(policy(deny_cache_ttl=10.0))
        harness.check("newbie", run_for=2.0)  # caches the denial at ~t=0
        harness.managers[0].add(APP, "newbie")
        harness.env.run(until=harness.env.now + 2.0)
        early = harness.check("newbie", run_for=2.0)  # ~t=4: still cached
        assert early.reason == DecisionReason.DENY_CACHED  # stale denial
        harness.env.run(until=harness.env.now + 10.0)  # past the TTL
        late = harness.check("newbie", run_for=5.0)
        assert late.allowed

    def test_grant_clears_negative_entry(self):
        harness = ExtensionHarness(policy(deny_cache_ttl=1000.0))
        harness.check("alice")  # denial cached with a long TTL
        harness.grant_everywhere("alice", counter=5)
        harness.env.run(until=harness.env.now + 1100.0)
        verified = harness.check("alice")
        assert verified.allowed
        # A subsequent denial path must not resurface the stale entry.
        host = harness.host
        assert host._deny_key(APP, "alice", Right.USE) not in host._deny_cache

    def test_query_load_shed(self):
        shed = ExtensionHarness(policy(deny_cache_ttl=1000.0))
        naive = ExtensionHarness(policy())
        for harness in (shed, naive):
            for _ in range(5):
                harness.check("mallory", run_for=5.0)
        shed_queries = shed.tracer.count(TraceKind.QUERY_SENT)
        naive_queries = naive.tracer.count(TraceKind.QUERY_SENT)
        assert shed_queries < naive_queries / 2


class TestByzantineTolerance:
    def test_required_quorum(self):
        assert required_quorum(0) == 1
        assert required_quorum(1) == 3
        assert required_quorum(2) == 5
        with pytest.raises(ValueError):
            required_quorum(-1)

    def test_policy_requires_large_enough_quorum(self):
        with pytest.raises(ValueError):
            AccessPolicy(check_quorum=1, byzantine_f=1)

    def test_naive_host_believes_the_lie(self):
        """Without Byzantine vouching, one liar's inflated version wins
        — demonstrating the attack."""
        harness = ExtensionHarness(
            policy(check_quorum=3, max_attempts=1), n_managers=3, liars=1
        )
        decision = harness.check("revoked-user")  # never granted
        assert decision.allowed  # the fabricated grant won

    def test_f1_vouching_defeats_one_liar(self):
        harness = ExtensionHarness(
            policy(check_quorum=3, byzantine_f=1, max_attempts=1),
            n_managers=4,
            liars=1,
        )
        decision = harness.check("revoked-user")
        assert not decision.allowed  # lie has only one voucher

    def test_f1_vouching_still_grants_legitimate_users(self):
        harness = ExtensionHarness(
            policy(check_quorum=3, byzantine_f=1, max_attempts=1),
            n_managers=4,
            liars=1,
        )
        harness.grant_everywhere("alice")
        decision = harness.check("alice")
        assert decision.allowed
        assert decision.reason == DecisionReason.VERIFIED

    def test_censoring_liar_cannot_deny_alone(self):
        harness = ExtensionHarness(
            policy(check_quorum=3, byzantine_f=1, max_attempts=1),
            n_managers=4,
            liars=1,
            lie_mode=DENY_ALL,
        )
        harness.grant_everywhere("alice")
        decision = harness.check("alice")
        assert decision.allowed

    def test_flip_mode_defeated(self):
        harness = ExtensionHarness(
            policy(check_quorum=3, byzantine_f=1, max_attempts=1),
            n_managers=4,
            liars=1,
            lie_mode=FLIP,
        )
        harness.grant_everywhere("alice")
        assert harness.check("alice").allowed
        assert not harness.check("stranger").allowed

    def test_independent_liars_do_not_vouch_for_each_other(self):
        """Two liars that do not coordinate produce distinct fabricated
        versions, so even f=1 survives them."""
        harness = ExtensionHarness(
            policy(check_quorum=3, byzantine_f=1, max_attempts=1),
            n_managers=5,
            liars=2,
        )
        decision = harness.check("revoked-user")
        assert not decision.allowed

    def test_colluding_liars_defeat_f1_but_not_f2(self):
        def make(f, c, m):
            harness = ExtensionHarness(
                policy(check_quorum=c, byzantine_f=f, max_attempts=1),
                n_managers=m,
                liars=2,
            )
            for manager in harness.managers:
                if isinstance(manager, LyingManager):
                    manager.collude_as = "evil-cartel"
            return harness

        beaten = make(f=1, c=3, m=5)
        decision = beaten.check("revoked-user")
        assert decision.allowed  # the cartel forges f+1 = 2 vouchers

        defended = make(f=2, c=5, m=7)
        decision = defended.check("revoked-user")
        assert not decision.allowed  # needs 3 vouchers, cartel has 2

    def test_lying_manager_counts_its_lies(self):
        harness = ExtensionHarness(
            policy(check_quorum=2, max_attempts=1), n_managers=3, liars=1
        )
        harness.check("ghost")
        liar = harness.managers[-1]
        assert isinstance(liar, LyingManager)
        assert liar.lies_told >= 1

    def test_invalid_lie_mode_rejected(self):
        with pytest.raises(ValueError):
            LyingManager("mX", policy(), mode="gaslight")


class TestSignedResponses:
    def test_signed_responses_verified(self):
        harness = ExtensionHarness(
            policy(check_quorum=2, max_attempts=1), signed=True
        )
        harness.grant_everywhere("alice")
        decision = harness.check("alice")
        assert decision.allowed
        assert harness.host.rejected_manager_signatures == 0

    def test_unsigned_response_rejected_when_signatures_required(self):
        harness = ExtensionHarness(
            policy(check_quorum=2, max_attempts=1), signed=True
        )
        # Sabotage one manager: strip its signing identity.
        harness.managers[0].principal = None
        harness.grant_everywhere("alice")
        decision = harness.check("alice")
        assert decision.allowed  # m1 + m2 still form the quorum
        assert harness.host.rejected_manager_signatures >= 1

    def test_impersonated_response_rejected(self):
        """A liar signing with its own key but claiming another
        manager's identity in the payload is dropped."""
        harness = ExtensionHarness(
            policy(check_quorum=3, byzantine_f=1, max_attempts=1),
            n_managers=4,
            liars=1,
            signed=True,
        )
        liar = harness.managers[-1]

        original_answer = liar._answer_query

        def impersonating_answer(src, request):
            from repro.core.messages import QueryResponse, Verdict
            from repro.core.rights import Version

            response = QueryResponse(
                query_id=request.query_id,
                application=request.application,
                user=request.user,
                right=request.right,
                verdict=Verdict.GRANT,
                te=100.0,
                version=Version(9_999, "m0"),
                manager="m0",  # claims to be the honest m0
            )
            liar.send(src, liar.principal.sign(response))

        liar._answer_query = impersonating_answer
        decision = harness.check("revoked-user")
        assert not decision.allowed
        assert harness.host.rejected_manager_signatures >= 1
