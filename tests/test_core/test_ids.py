"""Interner and packed-key behaviour (`core/ids.py`)."""

import pytest

from repro.core.ids import (
    RIGHT_INDEX,
    RIGHTS,
    Interner,
    pack_key,
    unpack_key,
)
from repro.core.rights import Right


class TestInterner:
    def test_ids_are_dense_and_stable(self):
        ids = Interner()
        assert ids.intern("alice") == 0
        assert ids.intern("bob") == 1
        assert ids.intern("alice") == 0
        assert len(ids) == 2

    def test_get_never_creates(self):
        ids = Interner()
        assert ids.get("ghost") is None
        assert len(ids) == 0
        ids.intern("real")
        assert ids.get("real") == 0

    def test_name_of_roundtrip(self):
        ids = Interner()
        for name in ["m0", "m1", "h0", "alice"]:
            assert ids.name_of(ids.intern(name)) == name

    def test_name_of_unknown_raises(self):
        with pytest.raises(KeyError):
            Interner().name_of(0)

    def test_contains_and_iter(self):
        ids = Interner()
        ids.intern("a")
        ids.intern("b")
        assert "a" in ids and "c" not in ids
        assert list(ids) == ["a", "b"]


class TestDensePrefix:
    def test_dense_names_map_arithmetically(self):
        ids = Interner(dense_prefix="u", dense_count=1000)
        assert ids.intern("u0") == 0
        assert ids.intern("u999") == 999
        assert ids.get("u500") == 500
        assert ids.name_of(123) == "u123"
        assert len(ids) == 1000

    def test_dense_block_stores_nothing(self):
        ids = Interner(dense_prefix="u", dense_count=10**6)
        for i in (0, 1, 999_999):
            assert ids.intern(f"u{i}") == i
        assert len(ids._ids) == 0  # arithmetic, not stored

    def test_extras_offset_past_dense_block(self):
        ids = Interner(dense_prefix="u", dense_count=100)
        assert ids.intern("m0") == 100
        assert ids.intern("u5") == 5
        assert ids.intern("m1") == 101
        assert ids.name_of(101) == "m1"

    def test_out_of_range_dense_name_is_an_extra(self):
        ids = Interner(dense_prefix="u", dense_count=10)
        assert ids.intern("u10") == 10  # first extra slot, coincidentally
        assert ids.intern("u11") == 11
        assert ids.name_of(10) == "u10"

    def test_non_canonical_digits_do_not_alias(self):
        ids = Interner(dense_prefix="u", dense_count=100)
        assert ids.intern("u01") != ids.intern("u1")
        assert ids.name_of(ids.intern("u01")) == "u01"

    def test_dense_count_requires_prefix(self):
        with pytest.raises(ValueError):
            Interner(dense_count=5)
        with pytest.raises(ValueError):
            Interner(dense_prefix="u", dense_count=-1)


class TestPackedKeys:
    def test_pack_unpack_roundtrip(self):
        for uid in (0, 1, 7, 10**6):
            for index in (0, 1):
                assert unpack_key(pack_key(uid, index)) == (uid, index)

    def test_right_index_covers_all_rights(self):
        assert set(RIGHT_INDEX) == set(Right)
        assert RIGHTS[RIGHT_INDEX[Right.USE]] is Right.USE
        assert RIGHTS[RIGHT_INDEX[Right.MANAGE]] is Right.MANAGE

    def test_keys_are_collision_free(self):
        seen = {pack_key(uid, index) for uid in range(100) for index in (0, 1)}
        assert len(seen) == 200
