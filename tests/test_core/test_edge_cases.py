"""Edge cases across the core protocol that the main suites skim over."""

from __future__ import annotations

import pytest

from repro.core.host import AccessControlHost, DecisionReason
from repro.core.manager import AccessControlManager
from repro.core.policy import (
    AccessPolicy,
    ExhaustedAction,
    QueryStrategy,
)
from repro.core.rights import AclEntry, Right, Version
from repro.core.system import AccessControlSystem
from repro.core.wrapper import Application, ApplicationHost
from repro.sim.clock import LocalClock
from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network, UniformLatency
from repro.sim.partitions import ScriptedConnectivity
from repro.sim.trace import Tracer

APP = "app"


class TestHostIdentitySubjects:
    """Section 2.1: "we could state it just as easily in terms of a
    host having the right to send a message to an application on
    another host.  In this case, a host would be identified by its
    Internet address."  Subjects are opaque strings, so host addresses
    work unchanged."""

    def test_host_addresses_as_subjects(self):
        system = AccessControlSystem(
            n_managers=3, n_hosts=1,
            policy=AccessPolicy(check_quorum=2, expiry_bound=60.0),
            latency=FixedLatency(0.02), seed=1,
        )
        system.seed_grant(APP, "10.1.2.3")  # an IP, not a user name
        allowed = system.hosts[0].request_access(APP, "10.1.2.3")
        denied = system.hosts[0].request_access(APP, "10.9.9.9")
        system.run(until=10)
        assert allowed.value.allowed
        assert not denied.value.allowed


class TestPerApplicationPolicies:
    def test_host_applies_per_app_overrides(self):
        policy_strict = AccessPolicy(
            check_quorum=3, expiry_bound=60.0, max_attempts=1,
            query_timeout=1.0, cache_cleanup_interval=None,
        )
        policy_lenient = AccessPolicy(
            check_quorum=1, expiry_bound=60.0, max_attempts=1,
            exhausted_action=ExhaustedAction.ALLOW,
            query_timeout=1.0, cache_cleanup_interval=None,
        )
        system = AccessControlSystem(
            n_managers=3, n_hosts=1,
            applications=("strict-app", "lenient-app"),
            policy=policy_strict,
            connectivity=(connectivity := ScriptedConnectivity()),
            latency=FixedLatency(0.02), seed=2,
        )
        host = system.hosts[0]
        host.set_policy("lenient-app", policy_lenient)
        system.seed_grant("strict-app", "u")
        system.seed_grant("lenient-app", "u")
        connectivity.isolate("h0", system.manager_addrs)
        strict = host.request_access("strict-app", "u")
        lenient = host.request_access("lenient-app", "u")
        system.run(until=30)
        assert not strict.value.allowed  # exhausted -> deny
        assert lenient.value.allowed  # Figure 4 default-allow

    def test_manager_applies_per_app_policy_te(self):
        env = Environment()
        network = Network(env, latency=FixedLatency(0.02), tracer=Tracer(env))
        short = AccessPolicy(check_quorum=1, expiry_bound=10.0, clock_bound=1.0)
        long_ = AccessPolicy(check_quorum=1, expiry_bound=1000.0, clock_bound=1.0)
        manager = AccessControlManager("m0", short)
        manager.manage("short-app", ("m0",))
        manager.manage("long-app", ("m0",))
        manager.set_policy("long-app", long_)
        network.register(manager)
        host = AccessControlHost(
            "h0", short,
            managers={"short-app": ("m0",), "long-app": ("m0",)},
            clock=LocalClock(env),
        )
        host.set_policy("long-app", long_)
        network.register(host)
        for app in ("short-app", "long-app"):
            manager.bootstrap(
                app, [AclEntry("u", Right.USE, True, Version(1, ""))]
            )
        a = host.request_access("short-app", "u")
        b = host.request_access("long-app", "u")
        env.run(until=5)
        assert a.value.allowed and b.value.allowed
        limits = {
            app: host.cache_for(app).entries()[0].limit
            for app in ("short-app", "long-app")
        }
        assert limits["long-app"] > limits["short-app"] + 100


class TestSequentialStrategyEdges:
    def test_sequential_with_c_equal_m(self):
        system = AccessControlSystem(
            n_managers=3, n_hosts=1,
            policy=AccessPolicy(
                check_quorum=3, query_strategy=QueryStrategy.SEQUENTIAL,
                expiry_bound=60.0, max_attempts=1, query_timeout=1.0,
            ),
            latency=FixedLatency(0.02), seed=3,
        )
        system.seed_grant(APP, "u")
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=10)
        assert process.value.allowed
        assert process.value.responses == 3

    def test_sequential_rotation_spreads_load(self):
        """Across attempts the starting manager rotates, so one slow
        manager does not absorb every first query."""
        system = AccessControlSystem(
            n_managers=3, n_hosts=1,
            policy=AccessPolicy(
                check_quorum=1, query_strategy=QueryStrategy.SEQUENTIAL,
                expiry_bound=0.5, max_attempts=1, query_timeout=1.0,
                cache_cleanup_interval=None,
            ),
            latency=FixedLatency(0.02), seed=4, clock_drift=False,
        )
        system.seed_grant(APP, "u")
        host = system.hosts[0]
        for _ in range(6):
            process = host.request_access(APP, "u")
            system.run(until=system.env.now + 1.0)  # > te: cache expired
        queries = {m.address: m.stats["queries"] for m in system.managers}
        assert all(count >= 1 for count in queries.values())


class TestWrapperEdges:
    class Crashy(Application):
        name = APP

        def handle_request(self, user, payload):
            if payload == "boom":
                raise RuntimeError("application bug")
            return "ok"

    def test_application_exception_becomes_error_response(self):
        """A bug in the wrapped application must not kill the host's
        serving loop; the client gets an explicit error response."""
        system = AccessControlSystem(
            n_managers=1, n_hosts=1,
            policy=AccessPolicy(check_quorum=1, expiry_bound=60.0),
            latency=FixedLatency(0.02), seed=5,
        )
        host = system.hosts[0]
        host.deploy(self.Crashy())
        system.seed_grant(APP, "u")
        from repro.core.client import UserClient

        client = UserClient("c0", "u")
        system.network.register(client)
        request = client.request(host.address, APP, "boom")
        system.run(until=10)
        assert not request.value.allowed
        assert "application error" in request.value.reason
        assert host.application_errors == 1
        # The host still serves healthy requests afterwards.
        healthy = client.request(host.address, APP, "fine")
        system.run(until=20)
        assert healthy.value.allowed and healthy.value.result == "ok"

    def test_empty_manager_set_from_name_service(self):
        system = AccessControlSystem(
            n_managers=2, n_hosts=1, use_name_service=True,
            policy=AccessPolicy(check_quorum=1, expiry_bound=60.0,
                                max_attempts=1, query_timeout=0.5),
            latency=FixedLatency(0.02), seed=6,
        )
        system.name_service.deregister("app")
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=10)
        assert process.value.reason == DecisionReason.NO_MANAGERS


class TestNameServiceOutage:
    def test_lookup_times_out_when_ns_down_finite_attempts(self):
        system = AccessControlSystem(
            n_managers=2, n_hosts=1, use_name_service=True,
            policy=AccessPolicy(check_quorum=1, expiry_bound=60.0,
                                max_attempts=2, query_timeout=0.5,
                                retry_backoff=0.2),
            latency=FixedLatency(0.02), seed=7,
        )
        system.seed_grant(APP, "u")
        system.name_service.crash()
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=30)
        assert process.triggered
        assert not process.value.allowed
        assert process.value.reason == DecisionReason.NO_MANAGERS

    def test_recovered_ns_serves_again(self):
        system = AccessControlSystem(
            n_managers=2, n_hosts=1, use_name_service=True,
            policy=AccessPolicy(check_quorum=1, expiry_bound=60.0,
                                max_attempts=2, query_timeout=0.5,
                                retry_backoff=0.2),
            latency=FixedLatency(0.02), seed=8,
        )
        system.seed_grant(APP, "u")
        system.name_service.crash()
        first = system.hosts[0].request_access(APP, "u")
        system.run(until=10)
        assert not first.value.allowed
        system.name_service.recover()
        second = system.hosts[0].request_access(APP, "u")
        system.run(until=20)
        assert second.value.allowed


class TestUniformLatencyIntegration:
    def test_protocol_works_with_jittery_latency(self):
        system = AccessControlSystem(
            n_managers=3, n_hosts=1,
            policy=AccessPolicy(check_quorum=2, expiry_bound=60.0,
                                query_timeout=2.0),
            latency=UniformLatency(0.01, 0.4),
            seed=9,
        )
        system.seed_grant(APP, "u")
        process = system.hosts[0].request_access(APP, "u")
        system.run(until=20)
        assert process.value.allowed
        assert 0.02 <= process.value.latency <= 0.8


class TestZeroHostSystem:
    def test_manager_only_deployment(self):
        """Analysis-style systems with no hosts are valid (used by the
        PS validation experiment)."""
        system = AccessControlSystem(
            n_managers=4, n_hosts=0,
            policy=AccessPolicy(check_quorum=2, expiry_bound=60.0),
            seed=10,
        )
        handle = system.managers[0].add(APP, "u")
        system.run(until=20)
        assert handle.complete.triggered


class TestAtLeastOnceDelivery:
    def test_protocol_tolerates_duplication_and_loss(self):
        """At-least-once links: duplicated queries, updates, acks, and
        revoke notifications must all be idempotent, and random loss is
        absorbed by retries."""
        system = AccessControlSystem(
            n_managers=3, n_hosts=2,
            policy=AccessPolicy(
                check_quorum=2, expiry_bound=60.0, query_timeout=1.0,
                retry_backoff=0.5, update_retry_interval=1.0,
            ),
            latency=FixedLatency(0.03),
            loss_rate=0.1,
            duplicate_rate=0.25,
            seed=11,
        )
        system.seed_grant(APP, "alice")
        checks = [host.request_access(APP, "alice") for host in system.hosts]
        system.run(until=30)
        assert all(check.value.allowed for check in checks)
        handle = system.managers[0].revoke(APP, "alice")
        system.run(until=90)
        assert handle.complete.triggered
        for manager in system.managers:
            assert not manager.acl(APP).check("alice", Right.USE)
        post = [host.request_access(APP, "alice") for host in system.hosts]
        system.run(until=120)
        assert all(not p.value.allowed for p in post)
        assert system.network.messages_duplicated > 0

    def test_duplicate_rate_validation(self):
        import pytest as _pytest

        from repro.sim.network import Network as _Network

        with _pytest.raises(ValueError):
            _Network(Environment(), duplicate_rate=1.0)
