"""Tests for the authoritative ACL."""

from __future__ import annotations

from repro.core.acl import AccessControlList
from repro.core.rights import AclEntry, Right, Version, ZERO_VERSION


def grant(user, counter, origin="m0", right=Right.USE):
    return AclEntry(user, right, True, Version(counter, origin))


def revoke(user, counter, origin="m0", right=Right.USE):
    return AclEntry(user, right, False, Version(counter, origin))


class TestBasics:
    def test_empty_denies(self):
        acl = AccessControlList("app")
        assert not acl.check("u", Right.USE)
        assert acl.entry("u", Right.USE) is None
        assert acl.version_of("u", Right.USE) == ZERO_VERSION

    def test_grant_then_check(self):
        acl = AccessControlList("app")
        assert acl.apply(grant("u", 1))
        assert acl.check("u", Right.USE)
        assert not acl.check("u", Right.MANAGE)

    def test_rights_independent(self):
        acl = AccessControlList("app")
        acl.apply(grant("u", 1, right=Right.MANAGE))
        assert acl.check("u", Right.MANAGE)
        assert not acl.check("u", Right.USE)

    def test_revocation_is_tombstone(self):
        acl = AccessControlList("app")
        acl.apply(grant("u", 1))
        acl.apply(revoke("u", 2))
        assert not acl.check("u", Right.USE)
        assert acl.entry("u", Right.USE) is not None  # tombstone kept
        assert len(acl) == 1

    def test_users_with(self):
        acl = AccessControlList("app")
        acl.apply(grant("b", 1))
        acl.apply(grant("a", 2))
        acl.apply(revoke("c", 3))
        assert acl.users_with(Right.USE) == ["a", "b"]

    def test_contains(self):
        acl = AccessControlList("app")
        acl.apply(grant("u", 1))
        assert ("u", Right.USE) in acl
        assert ("u", Right.MANAGE) not in acl


class TestMergeSemantics:
    def test_higher_version_wins(self):
        acl = AccessControlList("app")
        acl.apply(grant("u", 1))
        assert acl.apply(revoke("u", 2))
        assert not acl.check("u", Right.USE)

    def test_lower_version_ignored(self):
        acl = AccessControlList("app")
        acl.apply(revoke("u", 5))
        assert not acl.apply(grant("u", 3))
        assert not acl.check("u", Right.USE)

    def test_equal_version_idempotent(self):
        acl = AccessControlList("app")
        entry = grant("u", 1)
        assert acl.apply(entry)
        assert not acl.apply(entry)

    def test_concurrent_updates_deterministic_tiebreak(self):
        """Same counter from two origins: higher origin id wins, on
        both merge orders (convergence)."""
        a = AccessControlList("app")
        b = AccessControlList("app")
        grant_m1 = AclEntry("u", Right.USE, True, Version(4, "m1"))
        revoke_m2 = AclEntry("u", Right.USE, False, Version(4, "m2"))
        a.apply(grant_m1)
        a.apply(revoke_m2)
        b.apply(revoke_m2)
        b.apply(grant_m1)
        assert a.check("u", Right.USE) == b.check("u", Right.USE) is False

    def test_merge_counts_new(self):
        acl = AccessControlList("app")
        acl.apply(grant("u", 1))
        applied = acl.merge([grant("u", 1), grant("v", 2), revoke("u", 3)])
        assert applied == 2

    def test_merge_is_commutative(self):
        entries = [grant("u", 1), revoke("u", 3), grant("u", 2), grant("v", 1, "m9")]
        forward = AccessControlList("app")
        backward = AccessControlList("app")
        forward.merge(entries)
        backward.merge(reversed(entries))
        key = lambda e: (e.user, e.right.value)
        assert sorted(forward.snapshot(), key=key) == sorted(
            backward.snapshot(), key=key
        )


class TestSnapshot:
    def test_snapshot_roundtrip(self):
        source = AccessControlList("app")
        source.apply(grant("u", 1))
        source.apply(revoke("v", 2))
        replica = AccessControlList("app")
        replica.merge(source.snapshot())
        assert replica.check("u", Right.USE)
        assert not replica.check("v", Right.USE)
        assert replica.highest_version() == source.highest_version()

    def test_highest_version_empty(self):
        assert AccessControlList("app").highest_version() == ZERO_VERSION

    def test_snapshot_merge_idempotent(self):
        source = AccessControlList("app")
        source.apply(grant("u", 1))
        replica = AccessControlList("app")
        replica.merge(source.snapshot())
        assert replica.merge(source.snapshot()) == 0
