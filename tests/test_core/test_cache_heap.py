"""Heap-based expiry must be observably identical to the linear sweep.

``ACLCache.purge_expired`` now pops a ``(limit, key)`` min-heap instead
of scanning every entry.  These tests drive the real cache and a
reference implementation of the old O(n) sweep through the same
store/flush/lookup/expire interleavings and require identical entries,
return values, and counters at every step.
"""

from __future__ import annotations

import random

from repro.core.cache import ACLCache, CacheEntry
from repro.core.rights import Right, Version


def entry(user="u", right=Right.USE, limit=100.0, counter=1):
    return CacheEntry(
        user=user, right=right, limit=limit, version=Version(counter, "m")
    )


class ReferenceCache(ACLCache):
    """The pre-heap behaviour: purge by scanning every entry."""

    def purge_expired(self, now_local: float) -> int:
        expired = [
            key for key, e in self._entries.items() if now_local >= e.limit
        ]
        for key in expired:
            del self._entries[key]
            self._last_access.pop(key, None)
        self.expirations += len(expired)
        return len(expired)


def assert_same_state(cache: ACLCache, reference: ReferenceCache):
    assert {(e.user, e.right, e.limit) for e in cache.entries()} == {
        (e.user, e.right, e.limit) for e in reference.entries()
    }
    assert cache.expirations == reference.expirations
    assert cache.flushes == reference.flushes
    assert cache.hits == reference.hits
    assert cache.misses == reference.misses


class TestHeapExpiryTargeted:
    def test_boundary_is_expired(self):
        # Old semantics: now >= limit expires; the heap condition
        # (limit <= now) must agree at the exact boundary.
        cache = ACLCache("app")
        cache.store(entry(limit=50.0))
        assert cache.purge_expired(50.0) == 1

    def test_refresh_with_later_limit_survives_stale_record(self):
        cache = ACLCache("app")
        cache.store(entry(limit=10.0))
        cache.store(entry(limit=99.0, counter=2))  # stale (10.0, key) remains
        assert cache.purge_expired(50.0) == 0
        assert cache.lookup("u", Right.USE, 60.0).hit
        assert cache.purge_expired(100.0) == 1

    def test_refresh_with_earlier_limit_expires_early(self):
        cache = ACLCache("app")
        cache.store(entry(limit=99.0))
        cache.store(entry(limit=10.0, counter=2))
        assert cache.purge_expired(20.0) == 1
        assert len(cache) == 0
        # The stale (99.0, key) record must not resurrect anything.
        assert cache.purge_expired(100.0) == 0

    def test_flushed_entry_leaves_harmless_record(self):
        cache = ACLCache("app")
        cache.store(entry(limit=10.0))
        cache.flush("u", Right.USE)
        assert cache.purge_expired(50.0) == 0
        assert cache.expirations == 0

    def test_lookup_expiry_then_purge_counts_once(self):
        cache = ACLCache("app")
        cache.store(entry(limit=10.0))
        assert cache.lookup("u", Right.USE, 20.0).expired
        assert cache.purge_expired(30.0) == 0
        assert cache.expirations == 1

    def test_clear_resets_heap(self):
        cache = ACLCache("app")
        cache.store(entry(limit=10.0))
        cache.clear()
        cache.store(entry(limit=99.0, counter=2))
        assert cache.purge_expired(20.0) == 0
        assert len(cache) == 1

    def test_duplicate_same_limit_stores_expire_once(self):
        cache = ACLCache("app")
        cache.store(entry(limit=10.0))
        cache.store(entry(limit=10.0, counter=2))
        assert cache.purge_expired(10.0) == 1
        assert cache.expirations == 1

    def test_compaction_preserves_pending_expiries(self):
        cache = ACLCache("app")
        # Churn one key enough to trip the stale-record compaction
        # threshold, alongside untouched keys that must still expire.
        cache.store(entry(user="steady", limit=500.0))
        for i in range(400):
            cache.store(entry(user="churn", limit=1000.0 + i, counter=i + 1))
        # Compaction bounds stale records: the heap never exceeds the
        # 64-record floor plus a growth margin over the live entries.
        assert len(cache._expiry_heap) <= max(65, 4 * len(cache._entries) + 1)
        assert cache.purge_expired(600.0) == 1  # steady expired, churn not
        assert cache.lookup("churn", Right.USE, 600.0).hit


class TestHeapMatchesLinearSweepUnderInterleavings:
    def test_randomized_store_flush_expire_interleavings(self):
        rng = random.Random(1234)
        users = [f"u{i}" for i in range(12)]
        rights = [Right.USE, Right.MANAGE]
        cache, reference = ACLCache("app"), ReferenceCache("app")
        now = 0.0
        for step in range(3000):
            now += rng.random() * 3.0
            op = rng.random()
            if op < 0.45:
                e = entry(
                    user=rng.choice(users),
                    right=rng.choice(rights),
                    limit=now + rng.choice([-5.0, 0.0, 2.0, 10.0, 80.0]),
                    counter=step,
                )
                stamp = now if rng.random() < 0.5 else None
                cache.store(e, stamp)
                reference.store(e, stamp)
            elif op < 0.6:
                user = rng.choice(users)
                right = rng.choice([None, Right.USE, Right.MANAGE])
                assert cache.flush(user, right) == reference.flush(user, right)
            elif op < 0.8:
                user, right = rng.choice(users), rng.choice(rights)
                a = cache.lookup(user, right, now)
                b = reference.lookup(user, right, now)
                assert (a.hit, a.expired) == (b.hit, b.expired)
            else:
                assert cache.purge_expired(now) == reference.purge_expired(now)
            if step % 100 == 0:
                assert_same_state(cache, reference)
        cache.purge_expired(now + 1000.0)
        reference.purge_expired(now + 1000.0)
        assert_same_state(cache, reference)
