"""Tests for the host-side protocol (Figures 2, 3, 4)."""

from __future__ import annotations

import pytest

from repro.core.host import AccessControlHost, DecisionReason
from repro.core.manager import AccessControlManager
from repro.core.name_service import TrustedNameService
from repro.core.policy import (
    AccessPolicy,
    DeltaMode,
    ExhaustedAction,
    QueryStrategy,
)
from repro.core.rights import AclEntry, Right, Version
from repro.sim.clock import LocalClock
from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.partitions import ScriptedConnectivity
from repro.sim.trace import TraceKind, Tracer

APP = "app"


class Harness:
    """A host plus M managers on a deterministic network."""

    def __init__(
        self,
        policy: AccessPolicy,
        n_managers: int = 3,
        clock_rate: float = 1.0,
        use_name_service: bool = False,
        latency: float = 0.05,
    ):
        self.env = Environment()
        self.tracer = Tracer(self.env, keep_log=True)
        self.connectivity = ScriptedConnectivity()
        self.network = Network(
            self.env,
            connectivity=self.connectivity,
            latency=FixedLatency(latency),
            tracer=self.tracer,
        )
        self.manager_addrs = tuple(f"m{i}" for i in range(n_managers))
        self.managers = []
        for addr in self.manager_addrs:
            manager = AccessControlManager(addr, policy)
            manager.manage(APP, self.manager_addrs)
            self.network.register(manager)
            self.managers.append(manager)
        name_service = None
        if use_name_service:
            self.name_service = TrustedNameService()
            self.name_service.register(APP, self.manager_addrs)
            self.network.register(self.name_service)
            name_service = self.name_service.address
        self.host = AccessControlHost(
            "h0",
            policy,
            managers=None if use_name_service else {APP: self.manager_addrs},
            name_service=name_service,
            clock=LocalClock(self.env, rate=clock_rate),
        )
        self.network.register(self.host)

    def grant_everywhere(self, user: str, counter: int = 1):
        entry = AclEntry(user, Right.USE, True, Version(counter, "~seed"))
        for manager in self.managers:
            manager.bootstrap(APP, [entry])

    def check(self, user: str, run_for: float = 30.0):
        process = self.host.request_access(APP, user)
        self.env.run(until=self.env.now + run_for)
        return process.value


def policy(**overrides) -> AccessPolicy:
    defaults = dict(
        check_quorum=2,
        expiry_bound=100.0,
        clock_bound=1.0,
        query_timeout=1.0,
        retry_backoff=0.5,
        cache_cleanup_interval=None,
    )
    defaults.update(overrides)
    return AccessPolicy(**defaults)


class TestBasicDecisions:
    def test_granted_user_verified(self):
        harness = Harness(policy())
        harness.grant_everywhere("alice")
        decision = harness.check("alice")
        assert decision.allowed and decision.reason == DecisionReason.VERIFIED
        assert decision.attempts == 1
        assert decision.responses >= 2

    def test_unknown_user_denied(self):
        harness = Harness(policy())
        decision = harness.check("mallory")
        assert not decision.allowed and decision.reason == DecisionReason.DENIED

    def test_second_access_hits_cache(self):
        harness = Harness(policy())
        harness.grant_everywhere("alice")
        harness.check("alice")
        decision = harness.check("alice")
        assert decision.reason == DecisionReason.CACHE
        assert decision.latency == 0.0
        assert harness.host.cache_for(APP).hits == 1

    def test_denials_not_cached(self):
        harness = Harness(policy())
        first = harness.check("mallory")
        second = harness.check("mallory")
        assert first.reason == second.reason == DecisionReason.DENIED
        assert second.attempts == 1  # had to re-verify

    def test_no_managers_configured(self):
        harness = Harness(policy())
        harness.host._static_managers = {}
        decision = harness.check("alice")
        assert not decision.allowed
        assert decision.reason == DecisionReason.NO_MANAGERS

    def test_manage_right_checked_separately(self):
        harness = Harness(policy())
        entry = AclEntry("boss", Right.MANAGE, True, Version(1, "~seed"))
        for manager in harness.managers:
            manager.bootstrap(APP, [entry])
        use_proc = harness.host.request_access(APP, "boss", Right.USE)
        manage_proc = harness.host.request_access(APP, "boss", Right.MANAGE)
        harness.env.run(until=30)
        assert not use_proc.value.allowed
        assert manage_proc.value.allowed


class TestExpiry:
    def test_cached_entry_expires_and_reverifies(self):
        harness = Harness(policy(expiry_bound=10.0))
        harness.grant_everywhere("alice")
        harness.check("alice")
        harness.env.run(until=harness.env.now + 15.0)  # past te
        decision = harness.check("alice")
        assert decision.reason == DecisionReason.VERIFIED
        assert harness.host.cache_for(APP).expirations == 1

    def test_expiry_respects_slow_clock(self):
        """A slow clock (rate 1/b) keeps entries longer in real time —
        up to Te, never beyond."""
        b = 1.25
        harness = Harness(
            policy(expiry_bound=40.0, clock_bound=b, max_attempts=1),
            clock_rate=1.0 / b,
        )
        harness.grant_everywhere("alice")
        harness.check("alice")
        harness.connectivity.isolate("h0", harness.manager_addrs)
        # te_local = 40/1.25 = 32 local units = 40 real seconds at rate 0.8.
        harness.env.run(until=35.0)  # still within the real-time window
        alive = harness.host.request_access(APP, "alice")
        harness.env.run(until=36.0)
        assert alive.value.reason == DecisionReason.CACHE
        harness.env.run(until=45.0)  # now past Te
        process = harness.host.request_access(APP, "alice")
        harness.env.run(until=75.0)
        assert not process.value.allowed

    def test_fast_clock_expires_early_but_safely(self):
        harness = Harness(policy(expiry_bound=40.0, clock_bound=1.0), clock_rate=1.0)
        harness.grant_everywhere("alice")
        harness.check("alice")
        harness.env.run(until=41.0)
        lookup = harness.host.cache_for(APP).lookup(
            "alice", Right.USE, harness.host.clock.now()
        )
        assert not lookup.hit

    def test_half_round_trip_delta_gives_later_expiry(self):
        harness_full = Harness(policy(delta_mode=DeltaMode.FULL_ROUND_TRIP))
        harness_half = Harness(policy(delta_mode=DeltaMode.HALF_ROUND_TRIP))
        for harness in (harness_full, harness_half):
            harness.grant_everywhere("alice")
            harness.check("alice")
        limit_full = harness_full.host.cache_for(APP).entries()[0].limit
        limit_half = harness_half.host.cache_for(APP).entries()[0].limit
        assert limit_half > limit_full

    def test_cleanup_loop_purges(self):
        harness = Harness(policy(expiry_bound=5.0, cache_cleanup_interval=3.0))
        harness.grant_everywhere("alice")
        harness.check("alice", run_for=2.0)
        assert len(harness.host.cache_for(APP)) == 1
        harness.env.run(until=harness.env.now + 10.0)
        assert len(harness.host.cache_for(APP)) == 0


class TestQuorumCombination:
    def test_needs_check_quorum_responses(self):
        """With C=3 of 3 and one manager unreachable, checks fail."""
        harness = Harness(policy(check_quorum=3, max_attempts=1))
        harness.grant_everywhere("alice")
        harness.connectivity.set_down("h0", "m2")
        decision = harness.check("alice")
        assert not decision.allowed
        assert decision.reason == DecisionReason.EXHAUSTED

    def test_newer_revocation_beats_stale_grant(self):
        """One manager missed the revocation; version comparison saves
        the check quorum."""
        harness = Harness(policy(check_quorum=2))
        harness.grant_everywhere("alice", counter=1)
        # Two managers know about the revocation (update quorum for C=2).
        tombstone = AclEntry("alice", Right.USE, False, Version(2, "m0"))
        harness.managers[0].bootstrap(APP, [tombstone])
        harness.managers[1].bootstrap(APP, [tombstone])
        decision = harness.check("alice")
        assert not decision.allowed
        assert decision.reason == DecisionReason.DENIED

    def test_newer_grant_beats_stale_denial(self):
        """Conversely, a fresh Add wins over managers that missed it."""
        harness = Harness(policy(check_quorum=2))
        fresh = AclEntry("bob", Right.USE, True, Version(5, "m1"))
        harness.managers[0].bootstrap(APP, [fresh])
        harness.managers[1].bootstrap(APP, [fresh])
        decision = harness.check("bob")
        assert decision.allowed

    def test_sequential_strategy_collects_quorum(self):
        harness = Harness(policy(query_strategy=QueryStrategy.SEQUENTIAL))
        harness.grant_everywhere("alice")
        decision = harness.check("alice")
        assert decision.allowed
        assert decision.responses == 2  # stopped at C, not all M

    def test_sequential_skips_unreachable_manager(self):
        harness = Harness(
            policy(query_strategy=QueryStrategy.SEQUENTIAL, check_quorum=2)
        )
        harness.grant_everywhere("alice")
        harness.connectivity.set_down("h0", "m0")
        decision = harness.check("alice")
        assert decision.allowed  # m1 and m2 supplied the quorum

    def test_parallel_queries_all_managers(self):
        harness = Harness(policy(check_quorum=1))
        harness.grant_everywhere("alice")
        harness.check("alice")
        assert harness.tracer.count(TraceKind.QUERY_SENT) == 3


class TestRetriesAndFigure4:
    def test_unbounded_retries_survive_partition(self):
        harness = Harness(policy(max_attempts=None))
        harness.grant_everywhere("alice")
        harness.connectivity.isolate("h0", harness.manager_addrs)
        process = harness.host.request_access(APP, "alice")
        harness.env.run(until=20.0)
        assert process.is_alive  # still retrying
        harness.connectivity.reconnect("h0", harness.manager_addrs)
        harness.env.run(until=40.0)
        assert process.value.allowed

    def test_figure4_default_allow(self):
        harness = Harness(
            policy(max_attempts=3, exhausted_action=ExhaustedAction.ALLOW)
        )
        harness.grant_everywhere("alice")
        harness.connectivity.isolate("h0", harness.manager_addrs)
        decision = harness.check("alice")
        assert decision.allowed
        assert decision.reason == DecisionReason.DEFAULT_ALLOW
        assert decision.attempts == 3

    def test_exhausted_deny(self):
        harness = Harness(
            policy(max_attempts=2, exhausted_action=ExhaustedAction.DENY)
        )
        harness.connectivity.isolate("h0", harness.manager_addrs)
        decision = harness.check("alice")
        assert not decision.allowed
        assert decision.reason == DecisionReason.EXHAUSTED
        assert decision.attempts == 2

    def test_default_allow_not_cached(self):
        """A Figure 4 allow is not a verified right; it must not seed
        the cache."""
        harness = Harness(
            policy(max_attempts=1, exhausted_action=ExhaustedAction.ALLOW)
        )
        harness.connectivity.isolate("h0", harness.manager_addrs)
        harness.check("alice")
        assert len(harness.host.cache_for(APP)) == 0


class TestLateResponses:
    def test_response_after_timeout_discarded(self):
        """Figure 3's timer: responses arriving after the round's
        timeout must be ignored (stale te would break the bound)."""
        harness = Harness(
            policy(max_attempts=1, query_timeout=0.06), latency=0.05
        )
        harness.grant_everywhere("alice")
        # Round trip is 0.1 > timeout 0.06: every response arrives late.
        decision = harness.check("alice")
        assert not decision.allowed
        assert len(harness.host.cache_for(APP)) == 0
        assert not harness.host._pending_queries  # table cleaned up


class TestRevocationNotification:
    def test_revoke_notify_flushes_cache_and_acks(self):
        harness = Harness(policy())
        harness.grant_everywhere("alice")
        harness.check("alice")
        assert len(harness.host.cache_for(APP)) == 1
        harness.managers[0].revoke(APP, "alice")
        harness.env.run(until=harness.env.now + 10.0)
        assert len(harness.host.cache_for(APP)) == 0
        assert harness.tracer.count(TraceKind.CACHE_FLUSHED) >= 1
        decision = harness.check("alice")
        assert not decision.allowed


class TestHostCrash:
    def test_crash_clears_cache_and_recovery_refills(self):
        harness = Harness(policy())
        harness.grant_everywhere("alice")
        harness.check("alice")
        harness.host.crash()
        assert len(harness.host.cache_for(APP)) == 0
        harness.host.recover()
        decision = harness.check("alice")
        assert decision.allowed and decision.reason == DecisionReason.VERIFIED


class TestNameService:
    def test_managers_resolved_through_name_service(self):
        harness = Harness(policy(), use_name_service=True)
        harness.grant_everywhere("alice")
        decision = harness.check("alice")
        assert decision.allowed
        assert harness.name_service.lookups_served == 1

    def test_lookup_cached_until_ttl(self):
        harness = Harness(policy(name_service_ttl=600.0), use_name_service=True)
        harness.grant_everywhere("alice")
        harness.grant_everywhere("bob")
        harness.check("alice")
        harness.check("bob")
        assert harness.name_service.lookups_served == 1

    def test_lookup_requeried_after_ttl(self):
        harness = Harness(
            policy(name_service_ttl=5.0, expiry_bound=2.0), use_name_service=True
        )
        harness.grant_everywhere("alice")
        harness.check("alice")
        harness.env.run(until=harness.env.now + 10.0)
        harness.check("alice")
        assert harness.name_service.lookups_served == 2

    def test_unknown_application_denied(self):
        harness = Harness(policy(), use_name_service=True)
        process = harness.host.request_access("ghost-app", "alice")
        harness.env.run(until=30.0)
        assert process.value.reason == DecisionReason.NO_MANAGERS


class TestStats:
    def test_counters_update(self):
        harness = Harness(policy())
        harness.grant_everywhere("alice")
        harness.check("alice")
        harness.check("alice")
        harness.check("mallory")
        assert harness.host.stats["checks"] == 3
        assert harness.host.stats["allowed"] == 2
        assert harness.host.stats["denied"] == 1
