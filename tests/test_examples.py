"""Smoke tests: every example script must run to completion.

The examples are the first thing a new user runs; breaking one is a
release blocker, so they are executed (with stdout captured) as part
of the suite.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {script.stem for script in SCRIPTS}
    assert {
        "quickstart",
        "stock_quote_service",
        "newspaper_availability",
        "compromised_account",
        "partition_tradeoff",
        "mobile_subscriber",
        "delegated_administration",
    } <= names


class TestExampleContent:
    def test_quickstart_demonstrates_the_lifecycle(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "via 'verified'" in out
        assert "via 'cache'" in out
        assert "post-revoke  : allowed=False" in out

    def test_compromise_example_respects_bound(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "compromised_account.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "VIOLATION" not in out
        assert "OK" in out

    def test_stock_example_respects_bound(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "stock_quote_service.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "VIOLATION" not in out
