"""Tests for drifting local clocks."""

from __future__ import annotations

import random

import pytest

from repro.sim.clock import ClockFactory, LocalClock, slowness_bound
from repro.sim.engine import Environment


class TestLocalClock:
    def test_perfect_clock_tracks_real_time(self, env):
        clock = LocalClock(env)
        env.run(until=42.0)
        assert clock.now() == pytest.approx(42.0)

    def test_offset_shifts_reading(self, env):
        clock = LocalClock(env, offset=1000.0)
        assert clock.now() == pytest.approx(1000.0)
        env.run(until=10.0)
        assert clock.now() == pytest.approx(1010.0)

    def test_slow_clock_measures_less(self, env):
        clock = LocalClock(env, rate=0.5)
        env.run(until=20.0)
        assert clock.now() == pytest.approx(10.0)

    def test_fast_clock_measures_more(self, env):
        clock = LocalClock(env, rate=2.0)
        env.run(until=10.0)
        assert clock.now() == pytest.approx(20.0)

    def test_clock_created_mid_run_starts_at_offset(self, env):
        env.run(until=100.0)
        clock = LocalClock(env, rate=0.5, offset=7.0)
        assert clock.now() == pytest.approx(7.0)
        env.run(until=102.0)
        assert clock.now() == pytest.approx(8.0)

    def test_real_duration_inverts_rate(self, env):
        clock = LocalClock(env, rate=0.5)
        assert clock.real_duration(10.0) == pytest.approx(20.0)
        assert clock.local_duration(20.0) == pytest.approx(10.0)

    def test_nonpositive_rate_rejected(self, env):
        with pytest.raises(ValueError):
            LocalClock(env, rate=0.0)
        with pytest.raises(ValueError):
            LocalClock(env, rate=-1.0)

    def test_negative_duration_rejected(self, env):
        clock = LocalClock(env)
        with pytest.raises(ValueError):
            clock.real_duration(-1.0)
        with pytest.raises(ValueError):
            clock.local_duration(-1.0)

    def test_paper_bound_te_over_b_expires_within_te(self, env):
        """The Section 3.2 argument: a clock with rate >= 1/b measuring
        te = Te/b local units takes at most Te real units."""
        b = 1.2
        te_bound = 60.0
        te_local = te_bound / b
        for rate in (1.0 / b, 0.9, 1.0, 1.1):
            clock = LocalClock(env, rate=rate)
            real_needed = clock.real_duration(te_local)
            assert real_needed <= te_bound + 1e-9


class TestSlownessBound:
    def test_single_rate(self):
        assert slowness_bound([0.5]) == pytest.approx(2.0)

    def test_uses_slowest(self):
        assert slowness_bound([0.5, 0.9, 1.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            slowness_bound([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            slowness_bound([0.0, 1.0])


class TestClockFactory:
    def test_rates_respect_bound(self, env):
        factory = ClockFactory(env, b=1.1, rng=random.Random(1))
        for _ in range(100):
            clock = factory.make()
            assert 1.0 / 1.1 - 1e-12 <= clock.rate <= 1.0

    def test_perfect_clock(self, env):
        clock = ClockFactory(env, b=1.5).perfect()
        assert clock.rate == 1.0 and clock.offset == 0.0

    def test_b_below_one_rejected(self, env):
        with pytest.raises(ValueError):
            ClockFactory(env, b=0.9)

    def test_max_rate_must_admit_slowest(self, env):
        with pytest.raises(ValueError):
            ClockFactory(env, b=1.1, max_rate=0.5)

    def test_deterministic_given_seed(self, env):
        rates_a = [ClockFactory(env, rng=random.Random(7)).make().rate
                   for _ in range(3)]
        rates_b = [ClockFactory(env, rng=random.Random(7)).make().rate
                   for _ in range(3)]
        assert rates_a == rates_b
