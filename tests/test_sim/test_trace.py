"""Tests for the trace bus."""

from __future__ import annotations

import pytest

from repro.sim.trace import TraceKind, Tracer


class TestTracer:
    def test_counts_without_subscribers(self, env):
        tracer = Tracer(env)
        tracer.publish("custom", "src")
        tracer.publish("custom", "src")
        assert tracer.count("custom") == 2
        assert tracer.count("other") == 0

    def test_subscription_by_kind(self, env):
        tracer = Tracer(env)
        seen = []
        tracer.subscribe(["a", "b"], seen.append)
        tracer.publish("a", "s1")
        tracer.publish("b", "s2")
        tracer.publish("c", "s3")
        assert [record.kind for record in seen] == ["a", "b"]

    def test_wildcard_subscription(self, env):
        tracer = Tracer(env)
        seen = []
        tracer.subscribe(None, seen.append)
        tracer.publish("x", "s")
        tracer.publish("y", "s")
        assert len(seen) == 2

    def test_records_carry_time_and_data(self, env):
        tracer = Tracer(env)
        seen = []
        tracer.subscribe(["evt"], seen.append)
        env.run(until=12.5)
        tracer.publish("evt", "node1", detail=7)
        record = seen[0]
        assert record.time == 12.5
        assert record.source == "node1"
        assert record.data == {"detail": 7}

    def test_log_retention(self, env):
        tracer = Tracer(env, keep_log=True)
        tracer.publish("a", "s")
        tracer.publish("b", "s")
        assert [r.kind for r in tracer.records()] == ["a", "b"]
        assert [r.kind for r in tracer.records("a")] == ["a"]

    def test_records_without_log_raises(self, env):
        tracer = Tracer(env)
        with pytest.raises(RuntimeError):
            tracer.records()

    def test_counts_snapshot(self, env):
        tracer = Tracer(env)
        tracer.publish("a", "s")
        counts = tracer.counts()
        assert counts == {"a": 1}
        counts["a"] = 99  # mutation must not leak back
        assert tracer.count("a") == 1

    def test_kind_constants_are_unique(self):
        values = [
            getattr(TraceKind, name)
            for name in dir(TraceKind)
            if not name.startswith("_")
        ]
        assert len(values) == len(set(values))
