"""Tests for the unreliable network."""

from __future__ import annotations

import random
from typing import Any, List, Tuple

import pytest

from repro.sim.engine import Environment
from repro.sim.network import (
    FixedLatency,
    Network,
    ShiftedExponentialLatency,
    UniformLatency,
)
from repro.sim.node import Node
from repro.sim.trace import TraceKind, Tracer


class Recorder(Node):
    """Test node that records everything it receives."""

    def __init__(self, address: str):
        super().__init__(address)
        self.received: List[Tuple[float, str, Any]] = []

    def handle_message(self, src, message):
        self.received.append((self.env.now, src, message))


@pytest.fixture
def pair(network):
    a = Recorder("a")
    b = Recorder("b")
    network.register(a)
    network.register(b)
    return a, b


class TestDelivery:
    def test_unicast_delivers_with_latency(self, env, network, pair):
        a, b = pair
        a.send("b", "hello")
        env.run()
        assert b.received == [(0.05, "a", "hello")]

    def test_self_send_is_instant(self, env, network, pair):
        a, _b = pair
        a.send("a", "note")
        env.run()
        assert a.received == [(0.0, "a", "note")]

    def test_multicast_reaches_all(self, env, network, pair):
        a, b = pair
        c = Recorder("c")
        network.register(c)
        a.multicast(["b", "c"], "fan-out")
        env.run()
        assert len(b.received) == 1 and len(c.received) == 1

    def test_fifo_not_guaranteed_but_deterministic(self, env, network, pair):
        a, b = pair
        a.send("b", "first")
        a.send("b", "second")
        env.run()
        assert [m for (_t, _s, m) in b.received] == ["first", "second"]

    def test_unknown_destination_raises(self, network, pair):
        a, _b = pair
        with pytest.raises(ValueError):
            a.send("ghost", "x")

    def test_unknown_source_raises(self, network):
        with pytest.raises(ValueError):
            network.send("ghost", "also-ghost", "x")

    def test_duplicate_registration_rejected(self, network, pair):
        with pytest.raises(ValueError):
            network.register(Recorder("a"))


class TestDrops:
    def test_partitioned_link_drops(self, env, network, connectivity, pair):
        a, b = pair
        connectivity.set_down("a", "b")
        a.send("b", "lost")
        env.run()
        assert b.received == []
        assert network.messages_dropped == 1

    def test_down_destination_drops(self, env, network, pair):
        a, b = pair
        b.crash()
        a.send("b", "lost")
        env.run()
        assert b.received == []

    def test_down_source_drops(self, env, network, pair):
        a, b = pair
        a.crash()
        a.send("b", "lost")
        env.run()
        assert b.received == []

    def test_destination_crashing_in_flight_drops(self, env, network, pair):
        a, b = pair
        a.send("b", "lost")

        def crasher():
            yield env.timeout(0.01)
            b.crash()

        env.process(crasher())
        env.run()
        assert b.received == []

    def test_recheck_on_delivery_drops_mid_flight_partition(
        self, env, tracer, connectivity
    ):
        network = Network(
            env,
            connectivity=connectivity,
            latency=FixedLatency(0.05),
            tracer=tracer,
            recheck_on_delivery=True,
        )
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        a.send("b", "lost")

        def partitioner():
            yield env.timeout(0.01)
            connectivity.set_down("a", "b")

        env.process(partitioner())
        env.run()
        assert b.received == []

    def test_without_recheck_mid_flight_partition_still_delivers(
        self, env, network, connectivity, pair
    ):
        a, b = pair
        a.send("b", "made it")

        def partitioner():
            yield env.timeout(0.01)
            connectivity.set_down("a", "b")

        env.process(partitioner())
        env.run()
        assert len(b.received) == 1

    def test_random_loss(self, env, tracer):
        network = Network(
            env,
            latency=FixedLatency(0.0),
            loss_rate=0.5,
            tracer=tracer,
            rng=random.Random(4),
        )
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        for _ in range(200):
            a.send("b", "maybe")
        env.run()
        assert 60 < len(b.received) < 140  # ~100 expected

    def test_invalid_loss_rate_rejected(self, env):
        with pytest.raises(ValueError):
            Network(env, loss_rate=1.0)


def _world(seed: int = 7, latency=None, **net_kwargs):
    """A fresh 4-node world with a logging tracer and a seeded rng, so
    two identically-seeded worlds evolve identically."""
    env = Environment()
    tracer = Tracer(env, keep_log=True)
    network = Network(
        env,
        latency=latency or FixedLatency(0.05),
        tracer=tracer,
        rng=random.Random(seed),
        **net_kwargs,
    )
    nodes = [Recorder(f"n{i}") for i in range(4)]
    for node in nodes:
        network.register(node)
    return env, tracer, network, nodes


class TestSendMany:
    """``send_many`` must be observably identical to a ``send`` loop."""

    ITEMS = [(f"n{i}", ("payload", i)) for i in (1, 2, 3, 1)]

    def _run_both(self, **net_kwargs):
        batched = _world(**net_kwargs)
        unbatched = _world(**net_kwargs)
        batched[2].send_many("n0", self.ITEMS)
        for dst, message in self.ITEMS:
            unbatched[2].send("n0", dst, message)
        batched[0].run()
        unbatched[0].run()
        return batched, unbatched

    def _observables(self, world):
        env, tracer, network, nodes = world
        return (
            [node.received for node in nodes],
            network.messages_sent,
            network.messages_dropped,
            network.messages_duplicated,
            network.messages_delivered,
            tracer.counts(),
        )

    def test_matches_unbatched_loop(self):
        batched, unbatched = self._run_both()
        assert self._observables(batched) == self._observables(unbatched)

    def test_matches_loop_under_loss_and_duplication(self):
        batched, unbatched = self._run_both(loss_rate=0.3, duplicate_rate=0.3)
        assert self._observables(batched) == self._observables(unbatched)

    def test_matches_loop_when_source_down(self):
        batched = _world()
        unbatched = _world()
        batched[3][0].crash()
        unbatched[3][0].crash()
        batched[2].send_many("n0", self.ITEMS)
        for dst, message in self.ITEMS:
            unbatched[2].send("n0", dst, message)
        batched[0].run()
        unbatched[0].run()
        assert self._observables(batched) == self._observables(unbatched)
        assert batched[2].messages_dropped == len(self.ITEMS)

    def test_matches_loop_with_stochastic_latency(self):
        # Per-destination delays differ, so batching is impossible; the
        # fallback must still consume the rng in exactly send()'s order.
        kwargs = {"latency": UniformLatency(0.01, 0.09)}
        batched, unbatched = self._run_both(**kwargs)
        assert self._observables(batched) == self._observables(unbatched)

    def test_self_destination_falls_back(self):
        items = [("n1", "a"), ("n0", "loopback"), ("n2", "b")]
        env, _tracer, network, nodes = _world()
        network.send_many("n0", items)
        env.run()
        # Self-delivery is instant; the rest land at the fixed latency.
        assert nodes[0].received == [(0.0, "n0", "loopback")]
        assert nodes[1].received == [(0.05, "n0", "a")]
        assert nodes[2].received == [(0.05, "n0", "b")]

    def test_batch_is_one_scheduler_insertion(self):
        env, _tracer, network, _nodes = _world()
        before = len(env._queue)
        network.send_many("n0", self.ITEMS)
        assert len(env._queue) == before + 1  # vs one entry per message

    def test_on_sent_runs_per_item_even_for_drops(self):
        env, _tracer, network, nodes = _world()
        nodes[0].crash()
        sent = []
        network.send_many("n0", self.ITEMS, on_sent=lambda d, m: sent.append((d, m)))
        env.run()
        assert sent == self.ITEMS

    def test_unknown_destination_raises(self):
        _env, _tracer, network, _nodes = _world()
        with pytest.raises(ValueError):
            network.send_many("n0", [("n1", "ok"), ("ghost", "boom")])

    def test_unknown_source_raises(self):
        _env, _tracer, network, _nodes = _world()
        with pytest.raises(ValueError):
            network.send_many("ghost", [("n1", "x")])

    def test_node_send_many_requires_attachment(self):
        lonely = Recorder("lonely")
        with pytest.raises(RuntimeError):
            lonely.send_many([("n1", "x")])


class TestTraceIntegration:
    def test_send_and_delivery_traced(self, env, network, tracer, pair):
        a, _b = pair
        a.send("b", "x")
        env.run()
        assert tracer.count(TraceKind.MSG_SENT) == 1
        assert tracer.count(TraceKind.MSG_DELIVERED) == 1

    def test_drop_traced_with_reason(self, env, network, tracer, connectivity, pair):
        a, _b = pair
        connectivity.set_down("a", "b")
        a.send("b", "x")
        env.run()
        drops = tracer.records(TraceKind.MSG_DROPPED)
        assert drops[0].data["reason"] == "partitioned"

    def test_counters(self, env, network, connectivity, pair):
        a, _b = pair
        a.send("b", "ok")
        connectivity.set_down("a", "b")
        a.send("b", "dropped")
        env.run()
        assert network.messages_sent == 2
        assert network.messages_delivered == 1
        assert network.messages_dropped == 1


class TestReachable:
    def test_reflects_partition_and_crashes(self, network, connectivity, pair):
        a, b = pair
        assert network.reachable("a", "b")
        connectivity.set_down("a", "b")
        assert not network.reachable("a", "b")
        connectivity.set_up("a", "b")
        b.crash()
        assert not network.reachable("a", "b")
        b.recover()
        assert network.reachable("a", "b")

    def test_unknown_nodes_unreachable(self, network):
        assert not network.reachable("nope", "also-nope")

    def test_self_always_reachable_when_up(self, network, pair):
        assert network.reachable("a", "a")


class TestLatencyModels:
    def test_fixed(self):
        assert FixedLatency(0.2).sample(random.Random(0), "a", "b") == 0.2

    def test_fixed_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedLatency(-0.1)

    def test_uniform_in_range(self):
        model = UniformLatency(0.01, 0.09)
        rng = random.Random(0)
        for _ in range(100):
            assert 0.01 <= model.sample(rng, "a", "b") <= 0.09

    def test_uniform_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_shifted_exponential_has_floor(self):
        model = ShiftedExponentialLatency(minimum=0.02, mean_extra=0.03)
        rng = random.Random(0)
        samples = [model.sample(rng, "a", "b") for _ in range(500)]
        assert min(samples) >= 0.02
        assert sum(samples) / len(samples) == pytest.approx(0.05, rel=0.2)

    def test_shifted_exponential_zero_extra(self):
        model = ShiftedExponentialLatency(minimum=0.02, mean_extra=0.0)
        assert model.sample(random.Random(0), "a", "b") == 0.02
