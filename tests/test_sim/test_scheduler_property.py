"""Property test: the scheduler choice never changes observable behaviour.

The determinism contract (the module docstring of
:mod:`repro.sim.scheduler`) says every scheduler delivers entries in
exactly the same ``(time, eid)`` total order.  This test enforces it
differentially: random protocol-shaped schedules — request/reply timer
races (cancel churn), batched ``send_many`` multicast fan-outs,
zero-delay self-reschedules, and far-future timers that exercise the
calendar's overflow ladder — are run under the heap and calendar
schedulers, with dead-timer elision both on and off, and every
combination must produce the identical ``(time, actor, happening)``
stream and final clock.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.node import Node

# A tiny delay grid so simultaneous events (the eid tie-break path)
# occur constantly; 0.0 exercises current-day inserts during a drain.
delays = st.sampled_from([0.0, 0.5, 1.0, 1.0, 1.5, 2.0])

# One request/reply round per tuple: (reply_delay, timer_delay, pause).
rounds = st.tuples(delays, delays, delays)

# A host: start offset, its rounds, and a far-future lease delay that
# lands in the calendar's overflow ladder (and usually gets cancelled).
hosts = st.tuples(
    delays,
    st.lists(rounds, min_size=1, max_size=3),
    st.sampled_from([1e4, 1e6, 5e6]),
)

ADDRESSES = ("n0", "n1", "n2", "n3")


class _Recorder(Node):
    def __init__(self, address, log):
        super().__init__(address)
        self._log = log

    def handle_message(self, src, message):
        self._log.append((self.env.now, self.address, src, message))


def _run(schedule, scheduler, elide):
    env = Environment(elide_dead_timers=elide, scheduler=scheduler)
    assert env.scheduler_name == scheduler
    log = []
    network = Network(env, latency=FixedLatency(0.05))
    nodes = [_Recorder(address, log) for address in ADDRESSES]
    for node in nodes:
        network.register(node)

    def host(pid, start, ops, lease_delay):
        # A far-future lease timer: lives in the overflow ladder.  When
        # the host finishes its rounds first, the lease is cancelled —
        # a dead entry popped (or elided) deep in the future.
        lease = env.timeout(lease_delay)
        yield env.timeout(start)
        for op_index, (reply_delay, timer_delay, pause) in enumerate(ops):
            reply = env.timeout(reply_delay, value=("reply", pid, op_index))
            timer = env.timeout(timer_delay)
            result = yield env.any_of([reply, timer])
            winner = "reply" if reply in result else "timeout"
            log.append((env.now, pid, op_index, winner))
            # Batched fan-out at the current instant: every peer gets a
            # distinct payload through one scheduler insertion.
            src = nodes[pid % len(nodes)]
            src.send_many(
                [
                    (dst, (pid, op_index, i))
                    for i, dst in enumerate(ADDRESSES)
                    if dst != src.address
                ]
            )
            yield env.timeout(pause)
        log.append((env.now, pid, "done"))
        lease.cancel()

    def spinner(pid, beats):
        # Zero-delay self-reschedule: same-tick entries behind the
        # cursor's current day.
        for beat in range(beats):
            yield env.timeout(0.0)
            log.append((env.now, pid, "spin", beat))

    for pid, (start, ops, lease_delay) in enumerate(schedule):
        env.process(host(pid, start, ops, lease_delay), name=f"host{pid}")
        env.process(spinner(f"spinner{pid}", 2 + pid % 3))
    env.run()
    return log, env.now, env.dead_pops


@given(st.lists(hosts, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_schedulers_produce_identical_schedules(schedule):
    reference, now_reference, dead_reference = _run(schedule, "heap", True)
    for scheduler, elide in (
        ("calendar", True),
        ("heap", False),
        ("calendar", False),
    ):
        log, now, dead_pops = _run(schedule, scheduler, elide)
        assert log == reference, (scheduler, elide)
        assert now == now_reference, (scheduler, elide)
        if elide:
            # Both schedulers must elide the same entries.
            assert dead_pops == dead_reference
        else:
            assert dead_pops == 0
