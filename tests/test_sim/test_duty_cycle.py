"""Tests for the mobile-client duty-cycle model."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Environment
from repro.sim.partitions import DutyCycleModel
from repro.sim.trace import Tracer


def attach(model, seed=0):
    env = Environment()
    model.attach(env, random.Random(seed), Tracer(env))
    return env


class TestDutyCycleModel:
    def test_stationary_fraction_formula(self):
        model = DutyCycleModel(["h0"], mean_connected=60.0, mean_disconnected=40.0)
        assert model.disconnected_fraction == pytest.approx(0.4)

    def test_infrastructure_always_connected(self):
        model = DutyCycleModel(["h0"], mean_connected=1.0, mean_disconnected=100.0)
        env = attach(model)
        env.run(until=50.0)
        assert model.is_reachable("m0", "m1")  # non-targets unaffected

    def test_disconnection_cuts_all_links_of_target(self):
        model = DutyCycleModel(["h0"], mean_connected=1.0, mean_disconnected=1e9)
        env = attach(model, seed=1)
        env.run(until=100.0)  # almost surely disconnected by now
        assert not model.is_connected("h0")
        assert not model.is_reachable("h0", "m0")
        assert not model.is_reachable("m0", "h0")

    def test_long_run_disconnected_fraction(self):
        model = DutyCycleModel(["h0"], mean_connected=8.0, mean_disconnected=2.0)
        env = attach(model, seed=2)
        down = 0
        steps = 20_000
        for _ in range(steps):
            env.run(until=env.now + 1.0)
            if not model.is_connected("h0"):
                down += 1
        assert down / steps == pytest.approx(0.2, abs=0.04)

    def test_multiple_targets_independent(self):
        model = DutyCycleModel(
            ["h0", "h1"], mean_connected=5.0, mean_disconnected=5.0
        )
        env = attach(model, seed=3)
        agree = 0
        steps = 5_000
        for _ in range(steps):
            env.run(until=env.now + 1.0)
            if model.is_connected("h0") == model.is_connected("h1"):
                agree += 1
        assert 0.35 < agree / steps < 0.65

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DutyCycleModel(["h0"], mean_connected=0.0, mean_disconnected=1.0)
        with pytest.raises(ValueError):
            DutyCycleModel(["h0"], mean_connected=1.0, mean_disconnected=-1.0)
