"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)


class TestEnvironment:
    def test_time_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=100.0).now == 100.0

    def test_run_empty_queue_is_noop(self, env):
        env.run()
        assert env.now == 0.0

    def test_run_until_advances_time_even_without_events(self, env):
        env.run(until=50.0)
        assert env.now == 50.0

    def test_run_until_past_raises(self, env):
        env.run(until=10.0)
        with pytest.raises(SimulationError):
            env.run(until=5.0)

    def test_peek_empty_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_step_without_events_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestTimeout:
    def test_fires_after_delay(self, env):
        timeout = env.timeout(5.0)
        env.run()
        assert timeout.processed
        assert env.now == 5.0

    def test_carries_value(self, env):
        timeout = env.timeout(1.0, value="done")
        env.run()
        assert timeout.value == "done"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_zero_delay_fires_at_current_time(self, env):
        timeout = env.timeout(0.0)
        env.run()
        assert timeout.processed and env.now == 0.0


class TestEvent:
    def test_succeed_delivers_value(self, env):
        event = env.event()
        event.succeed(42)
        env.run()
        assert event.ok is True and event.value == 42

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("x"))

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_fail_requires_exception(self, env):
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_callback_after_processing_runs_immediately(self, env):
        event = env.event()
        event.succeed("x")
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_callbacks_run_in_registration_order(self, env):
        event = env.event()
        order = []
        event.add_callback(lambda e: order.append(1))
        event.add_callback(lambda e: order.append(2))
        event.succeed()
        env.run()
        assert order == [1, 2]


class TestProcess:
    def test_return_value_becomes_event_value(self, env):
        def proc():
            yield env.timeout(3)
            return "finished"

        process = env.process(proc())
        env.run()
        assert process.value == "finished"
        assert env.now == 3

    def test_sequential_timeouts_accumulate(self, env):
        def proc():
            yield env.timeout(2)
            yield env.timeout(3)
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 5

    def test_process_waits_on_process(self, env):
        def inner():
            yield env.timeout(4)
            return "inner-result"

        def outer():
            result = yield env.process(inner())
            return f"got {result}"

        process = env.process(outer())
        env.run()
        assert process.value == "got inner-result"

    def test_exception_propagates_to_event(self, env):
        def proc():
            yield env.timeout(1)
            raise ValueError("boom")

        process = env.process(proc())
        env.run()
        assert process.ok is False
        assert isinstance(process.value, ValueError)

    def test_failed_event_throws_into_waiter(self, env):
        event = env.event()

        def proc():
            try:
                yield event
            except RuntimeError as exc:
                return f"caught {exc}"

        process = env.process(proc())
        event.fail(RuntimeError("bad"))
        env.run()
        assert process.value == "caught bad"

    def test_yielding_non_event_raises_into_generator(self, env):
        def proc():
            try:
                yield 42  # type: ignore[misc]
            except SimulationError:
                return "rejected"

        process = env.process(proc())
        env.run()
        assert process.value == "rejected"

    def test_non_generator_rejected(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_is_alive_lifecycle(self, env):
        def proc():
            yield env.timeout(10)

        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_immediate_return_process(self, env):
        def proc():
            return "now"
            yield  # pragma: no cover

        process = env.process(proc())
        env.run()
        assert process.value == "now"

    def test_interrupt_wakes_sleeping_process(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
                return "slept"
            except Interrupt as interrupt:
                return f"interrupted: {interrupt.cause}"

        process = env.process(sleeper())

        def interrupter():
            yield env.timeout(5)
            process.interrupt("wake up")

        env.process(interrupter())
        env.run()
        assert process.value == "interrupted: wake up"
        # The interrupt fired at t=5; the stale timeout still drains the
        # queue but must not resume the process again.
        assert env.now == 100

    def test_interrupting_finished_process_raises(self, env):
        def proc():
            return None
            yield  # pragma: no cover

        process = env.process(proc())
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()


class TestConditions:
    def test_any_of_fires_on_first(self, env):
        slow = env.timeout(10, value="slow")
        fast = env.timeout(2, value="fast")

        def proc():
            result = yield env.any_of([slow, fast])
            return result

        process = env.process(proc())
        env.run()
        assert fast in process.value
        assert slow not in process.value
        assert process.value[fast] == "fast"

    def test_all_of_waits_for_all(self, env):
        a = env.timeout(3, value="a")
        b = env.timeout(7, value="b")

        def proc():
            result = yield env.all_of([a, b])
            return result

        process = env.process(proc())
        env.run()
        assert process.value == {a: "a", b: "b"}

    def test_empty_condition_fires_immediately(self, env):
        def proc():
            result = yield env.all_of([])
            return result

        process = env.process(proc())
        env.run()
        assert process.value == {}
        assert env.now == 0.0

    def test_operator_or(self, env):
        fast = env.timeout(1, value=1)
        slow = env.timeout(5, value=2)

        def proc():
            yield fast | slow
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 1

    def test_operator_and(self, env):
        a = env.timeout(1)
        b = env.timeout(5)

        def proc():
            yield a & b
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 5

    def test_condition_failure_propagates(self, env):
        bad = env.event()

        def proc():
            try:
                yield env.any_of([bad, env.timeout(10)])
            except ValueError:
                return "failed"

        process = env.process(proc())
        bad.fail(ValueError("no"))
        env.run()
        assert process.value == "failed"


class TestDeterminism:
    def test_same_time_events_run_in_schedule_order(self, env):
        order = []
        for index in range(5):
            event = env.timeout(1.0)
            event.add_callback(lambda _e, i=index: order.append(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_leaves_future_events_pending(self, env):
        later = env.timeout(10)
        env.run(until=5)
        assert env.now == 5
        assert not later.processed
        env.run()
        assert later.processed
        assert env.now == 10

    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            env = Environment()
            log = []

            def worker(name, delay):
                while env.now < 20:
                    yield env.timeout(delay)
                    log.append((env.now, name))

            env.process(worker("a", 3))
            env.process(worker("b", 5))
            env.run(until=20)
            return log

        assert build_and_run() == build_and_run()


class TestFastPaths:
    """The allocation-avoiding paths must be behaviourally invisible."""

    def test_single_timeout_wait_uses_waiter_slot(self, env):
        def sleeper():
            yield env.timeout(5)
            return "ok"

        process = env.process(sleeper())
        env.run(until=1)  # past the bootstrap; the process waits on the timeout
        target = process._target
        assert isinstance(target, Timeout)
        assert target._waiter is process and target._callbacks is None
        env.run()
        assert process.value == "ok"

    def test_timeout_with_prior_callback_keeps_callback_order(self, env):
        order = []
        timeout = env.timeout(3)
        timeout.add_callback(lambda _e: order.append("callback"))

        def waiter():
            yield timeout
            order.append("process")

        env.process(waiter())
        env.run()
        assert order == ["callback", "process"]

    def test_waiter_resumes_before_later_callbacks(self, env):
        # The process yielded first, so it registered first and must
        # still resume first even though it sits in the waiter slot.
        order = []
        timeout = env.timeout(3)

        def waiter():
            yield timeout
            order.append("process")

        env.process(waiter())
        env.run(until=1)
        timeout.add_callback(lambda _e: order.append("callback"))
        env.run()
        assert order == ["process", "callback"]

    def test_condition_value_behaves_like_dict(self, env):
        fast = env.timeout(1, value="fast")
        slow = env.timeout(9, value="slow")

        def proc():
            result = yield env.any_of([fast, slow])
            return result

        process = env.process(proc())
        env.run()
        value = process.value
        assert value == {fast: "fast"}
        assert fast in value and slow not in value
        assert list(value) == [fast]
        assert len(value) == 1
        assert value.get(slow, "absent") == "absent"
        assert dict(value) == {fast: "fast"}

    def test_condition_value_snapshot_taken_at_trigger(self):
        # Sub-events succeeding after the condition fired must not leak
        # into a value that is only inspected later.  Elision is disabled
        # so the losing timeout still fires and could leak if the
        # snapshot were taken lazily.
        env = Environment(elide_dead_timers=False)
        fast = env.timeout(1, value="fast")
        slow = env.timeout(9, value="slow")
        condition = env.any_of([fast, slow])
        env.run()  # both timeouts processed; condition fired at t=1
        assert slow.processed
        assert condition.value == {fast: "fast"}

    def test_bootstrap_start_order_matches_schedule_order(self, env):
        order = []

        def worker(tag):
            order.append(tag)
            yield env.timeout(0)

        env.process(worker("first"))
        event = env.timeout(0)
        event.add_callback(lambda _e: order.append("timeout"))
        env.process(worker("second"))
        env.run()
        assert order == ["first", "timeout", "second"]


class TestEngineDeepEdges:
    def test_interrupt_process_waiting_on_condition(self, env):
        from repro.sim.engine import AnyOf

        def waiter():
            try:
                yield env.any_of([env.timeout(50), env.timeout(60)])
                return "finished"
            except Interrupt:
                return "interrupted"

        process = env.process(waiter())

        def interrupter():
            yield env.timeout(5)
            process.interrupt()

        env.process(interrupter())
        env.run()
        assert process.value == "interrupted"

    def test_yield_already_processed_event_resumes_immediately(self, env):
        fired = env.timeout(1, value="early")
        env.run(until=2)

        def late_waiter():
            value = yield fired
            return (env.now, value)

        process = env.process(late_waiter())
        env.run(until=3)
        assert process.value == (2, "early")

    def test_nested_reentrant_run_rejected(self, env):
        def naughty():
            yield env.timeout(1)
            env.run(until=10)  # illegal: already inside run()

        process = env.process(naughty())
        env.run()
        assert process.ok is False
        assert isinstance(process.value, SimulationError)

    def test_failed_process_value_holds_exception(self, env):
        def boom():
            yield env.timeout(1)
            raise KeyError("oops")

        process = env.process(boom())
        env.run()
        assert isinstance(process.value, KeyError)
        # Waiting on a failed process throws into the waiter.
        def watcher():
            try:
                yield process
            except KeyError:
                return "saw it"

        # The failed process is already processed; waiting still works.
        watcher_process = env.process(watcher())
        env.run()
        assert watcher_process.value == "saw it"

    def test_process_name_defaults(self, env):
        def my_generator():
            yield env.timeout(1)

        process = env.process(my_generator())
        assert "my_generator" in repr(process) or "process" in repr(process)


class TestTimerElision:
    """Dead-timer elision: cancelled Timeouts are popped, never processed."""

    def test_cancel_fresh_timeout_skips_processing(self, env):
        timer = env.timeout(5.0)
        assert timer.cancel() is True
        env.run()
        assert not timer.processed
        assert env.dead_pops == 1
        assert env.now == 5.0  # a dead pop still advances the clock

    def test_cancel_is_idempotent(self, env):
        timer = env.timeout(1.0)
        assert timer.cancel() is True
        assert timer.cancel() is True
        env.run()
        assert env.dead_pops == 1

    def test_cancel_refused_with_parked_waiter(self, env):
        def sleeper():
            yield env.timeout(2.0)
            return "woke"

        process = env.process(sleeper())
        env.run(until=1.0)  # bootstrap ran; the process is parked on the timer
        timer = process._target
        if isinstance(timer, Timeout):
            assert timer.cancel() is False
        env.run()
        assert process.value == "woke"

    def test_cancel_refused_with_callbacks(self, env):
        timer = env.timeout(1.0)
        timer.add_callback(lambda event: None)
        assert timer.cancel() is False
        env.run()
        assert timer.processed and env.dead_pops == 0

    def test_cancel_refused_after_processed(self, env):
        timer = env.timeout(1.0)
        env.run()
        assert timer.processed
        assert timer.cancel() is False

    def test_cancel_refused_when_elision_disabled(self):
        env = Environment(elide_dead_timers=False)
        timer = env.timeout(1.0)
        assert timer.cancel() is False
        env.run()
        assert timer.processed and env.dead_pops == 0

    def test_any_of_detaches_and_elides_losing_timeout(self, env):
        def racer():
            reply = env.timeout(0.5, value="reply")
            timer = env.timeout(10.0)
            result = yield env.any_of([reply, timer])
            return dict(result)

        process = env.process(racer())
        env.run()
        assert list(process.value.values()) == ["reply"]
        assert env.dead_pops == 1
        assert env.now == 10.0  # the dead entry still drained the heap

    def test_losing_event_with_other_observers_still_fires(self, env):
        # The loser is a timer someone else also waits on: detaching the
        # condition's callback must not cancel it.
        shared = env.timeout(3.0, value="shared")

        def racer():
            reply = env.timeout(1.0, value="fast")
            yield env.any_of([reply, shared])

        def bystander():
            value = yield shared
            return value

        env.process(racer())
        watcher = env.process(bystander())
        env.run()
        assert watcher.value == "shared"
        assert shared.processed

    def test_interrupt_cancels_fresh_sleep_timer(self, env):
        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                return "interrupted"

        def interrupter(process):
            yield env.timeout(1.0)
            process.interrupt("wake up")

        process = env.process(sleeper())
        env.process(interrupter(process))
        env.run()
        assert process.value == "interrupted"
        assert env.dead_pops == 1
        assert env.now == 100.0

    def test_heap_entries_are_time_eid_event_triples(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        assert all(len(entry) == 3 for entry in env._queue)
        times = [entry[0] for entry in env._queue]
        eids = [entry[1] for entry in env._queue]
        assert times == [1.0, 2.0]
        assert eids[0] < eids[1]  # scheduling order is the tie-break
