"""Tests for the partition models."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Environment
from repro.sim.partitions import (
    BernoulliPerMessage,
    FullConnectivity,
    GroupPartitionModel,
    PairEpochModel,
    SampledConnectivity,
    ScriptedConnectivity,
    StaticPartition,
    pair_key,
)
from repro.sim.trace import Tracer


def attach(model, seed=0):
    env = Environment()
    model.attach(env, random.Random(seed), Tracer(env))
    return env


class TestPairKey:
    def test_symmetric(self):
        assert pair_key("a", "b") == pair_key("b", "a")

    def test_canonical_order(self):
        assert pair_key("z", "a") == ("a", "z")


class TestFullConnectivity:
    def test_always_reachable(self):
        model = FullConnectivity()
        attach(model)
        assert model.is_reachable("x", "y")


class TestStaticPartition:
    def test_groups_separate(self):
        model = StaticPartition([["a", "b"], ["c"]])
        attach(model)
        assert model.is_reachable("a", "b")
        assert not model.is_reachable("a", "c")

    def test_unlisted_share_component(self):
        model = StaticPartition([["a"]])
        attach(model)
        assert model.is_reachable("x", "y")
        assert not model.is_reachable("a", "x")

    def test_duplicate_membership_rejected(self):
        with pytest.raises(ValueError):
            StaticPartition([["a"], ["a", "b"]])


class TestScriptedConnectivity:
    def test_links_start_up(self):
        model = ScriptedConnectivity()
        attach(model)
        assert model.is_reachable("a", "b")

    def test_set_down_and_up(self):
        model = ScriptedConnectivity()
        attach(model)
        model.set_down("a", "b")
        assert not model.is_reachable("a", "b")
        assert not model.is_reachable("b", "a")  # symmetric
        model.set_up("b", "a")
        assert model.is_reachable("a", "b")

    def test_isolate_and_reconnect(self):
        model = ScriptedConnectivity()
        attach(model)
        model.isolate("h", ["m0", "m1", "h"])  # own address skipped
        assert not model.is_reachable("h", "m0")
        assert not model.is_reachable("h", "m1")
        assert model.is_reachable("m0", "m1")
        model.reconnect("h", ["m0", "m1"])
        assert model.is_reachable("h", "m0")

    def test_partition_and_heal(self):
        model = ScriptedConnectivity()
        attach(model)
        model.partition([["a", "b"], ["c", "d"]])
        assert model.is_reachable("a", "b")
        assert not model.is_reachable("a", "c")
        model.heal()
        assert model.is_reachable("a", "c")

    def test_heal_revives_downed_links(self):
        # Regression (PR-7 known bug): heal() used to remove only the
        # grouping, leaving explicitly downed links severed — unlike the
        # live backend, which clears every blocked pair.
        model = ScriptedConnectivity()
        attach(model)
        model.set_down("a", "c")
        model.partition([["a", "b"], ["c"]])
        model.heal()
        assert model.is_reachable("a", "c")
        assert model.is_reachable("a", "b")

    def test_heal_revives_isolated_node(self):
        model = ScriptedConnectivity()
        attach(model)
        model.isolate("h", ["m0", "m1"])
        assert not model.is_reachable("h", "m0")
        model.heal()
        assert model.is_reachable("h", "m0")
        assert model.is_reachable("h", "m1")

    def test_heal_restores_component_table(self):
        model = ScriptedConnectivity()
        attach(model)
        model.set_down("a", "b")
        assert model.component_table() is None
        model.heal()
        assert model.component_table() == {}


class TestBernoulliPerMessage:
    def test_zero_pi_always_reachable(self):
        model = BernoulliPerMessage(0.0)
        attach(model)
        assert all(model.is_reachable("a", "b") for _ in range(100))

    def test_rate_approximates_pi(self):
        model = BernoulliPerMessage(0.3)
        attach(model, seed=2)
        downs = sum(not model.is_reachable("a", "b") for _ in range(5000))
        assert downs / 5000 == pytest.approx(0.3, abs=0.03)

    def test_invalid_pi_rejected(self):
        with pytest.raises(ValueError):
            BernoulliPerMessage(1.0)
        with pytest.raises(ValueError):
            BernoulliPerMessage(-0.1)


class TestSampledConnectivity:
    def test_stable_between_resamples(self):
        model = SampledConnectivity(0.5)
        attach(model, seed=3)
        first = model.is_reachable("a", "b")
        for _ in range(10):
            assert model.is_reachable("a", "b") == first

    def test_resample_changes_draws(self):
        model = SampledConnectivity(0.5)
        attach(model, seed=3)
        outcomes = set()
        for _ in range(50):
            model.resample()
            outcomes.add(model.is_reachable("a", "b"))
        assert outcomes == {True, False}

    def test_stationary_fraction(self):
        model = SampledConnectivity(0.2)
        attach(model, seed=4)
        downs = 0
        trials = 3000
        for _ in range(trials):
            model.resample()
            if not model.is_reachable("a", "b"):
                downs += 1
        assert downs / trials == pytest.approx(0.2, abs=0.03)

    def test_pairs_independent(self):
        model = SampledConnectivity(0.5)
        attach(model, seed=5)
        agree = 0
        trials = 2000
        for _ in range(trials):
            model.resample()
            if model.is_reachable("a", "b") == model.is_reachable("a", "c"):
                agree += 1
        assert agree / trials == pytest.approx(0.5, abs=0.05)


class TestPairEpochModel:
    def test_zero_pi_reachable_without_processes(self):
        model = PairEpochModel(0.0)
        env = attach(model)
        assert model.is_reachable("a", "b")
        env.run(until=100)
        assert model.is_reachable("a", "b")

    def test_mean_uptime_matches_stationarity(self):
        model = PairEpochModel(0.25, mean_outage=30.0)
        assert model.mean_uptime == pytest.approx(90.0)

    def test_long_run_down_fraction(self):
        model = PairEpochModel(0.2, mean_outage=10.0)
        env = attach(model, seed=6)
        down_time = 0.0
        step = 1.0
        steps = 20_000
        for _ in range(steps):
            if not model.is_reachable("a", "b"):
                down_time += step
            env.run(until=env.now + step)
        assert down_time / (steps * step) == pytest.approx(0.2, abs=0.04)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            PairEpochModel(1.0)
        with pytest.raises(ValueError):
            PairEpochModel(0.1, mean_outage=0.0)

    def test_force_resample_clears_state(self):
        model = PairEpochModel(0.5, mean_outage=1000.0)
        attach(model, seed=7)
        model.is_reachable("a", "b")
        assert model._pairs
        model.force_resample()
        assert not model._pairs


class TestGroupPartitionModel:
    def test_partitions_come_and_go(self):
        addresses = [f"n{i}" for i in range(6)]
        model = GroupPartitionModel(
            addresses, event_rate=0.1, mean_duration=5.0, n_groups=2
        )
        env = attach(model, seed=8)
        saw_partition = saw_healed = False
        for _ in range(500):
            env.run(until=env.now + 1.0)
            separated = any(
                not model.is_reachable(a, b)
                for a in addresses
                for b in addresses
                if a < b
            )
            if separated:
                saw_partition = True
            else:
                saw_healed = True
        assert saw_partition and saw_healed

    def test_within_group_reachable(self):
        addresses = ["a", "b", "c", "d"]
        model = GroupPartitionModel(addresses, event_rate=1.0, mean_duration=1000.0)
        env = attach(model, seed=9)
        env.run(until=10.0)  # a partition is almost surely active
        groups = {}
        for address in addresses:
            groups.setdefault(model._component[address], []).append(address)
        for members in groups.values():
            for x in members:
                for y in members:
                    assert model.is_reachable(x, y)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            GroupPartitionModel(["a"], event_rate=0.0, mean_duration=1.0)
        with pytest.raises(ValueError):
            GroupPartitionModel(["a"], event_rate=1.0, mean_duration=1.0, n_groups=1)
