"""Property test for the epoch-cached reachability fast path.

``Network.reachable`` answers through a cached flat component table
(or a per-pair memo) that is invalidated by the connectivity model's
topology epoch.  The safety property is exact equivalence: after *any*
interleaving of partition / heal / link-toggle / crash / recover
transitions, the cached answer for every pair equals a fresh,
cache-free recomputation from the model and the nodes' up state.
A missed ``bump_epoch`` on any transition shows up here as a stale
component table.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.node import Node
from repro.sim.partitions import ScriptedConnectivity

N_NODES = 6
ADDRESSES = [f"n{i}" for i in range(N_NODES)]

node_indexes = st.integers(min_value=0, max_value=N_NODES - 1)

# One topology transition: every mutation the scripted model (plus the
# crash/recovery layer) can perform between messages.
operations = st.one_of(
    st.tuples(st.just("set_down"), node_indexes, node_indexes),
    st.tuples(st.just("set_up"), node_indexes, node_indexes),
    st.tuples(st.just("isolate"), node_indexes, node_indexes),
    st.tuples(st.just("reconnect"), node_indexes, node_indexes),
    st.tuples(
        st.just("partition"),
        st.lists(
            st.booleans(), min_size=N_NODES, max_size=N_NODES
        ),
        st.just(0),
    ),
    st.tuples(st.just("heal"), st.just(0), st.just(0)),
    st.tuples(st.just("crash"), node_indexes, st.just(0)),
    st.tuples(st.just("recover"), node_indexes, st.just(0)),
)


def _build():
    env = Environment()
    connectivity = ScriptedConnectivity()
    network = Network(env, connectivity=connectivity, latency=FixedLatency(0.01))
    nodes = [network.register(Node(address)) for address in ADDRESSES]
    return network, connectivity, nodes


def _fresh_reachable(connectivity, nodes, i: int, j: int) -> bool:
    """Ground truth, bypassing every cache layer."""
    a, b = nodes[i], nodes[j]
    if not a.up or not b.up:
        return False
    return i == j or connectivity.is_reachable(a.address, b.address)


def _apply(network, connectivity, nodes, op) -> None:
    name, x, y = op
    if name == "set_down":
        if x != y:
            connectivity.set_down(ADDRESSES[x], ADDRESSES[y])
    elif name == "set_up":
        if x != y:
            connectivity.set_up(ADDRESSES[x], ADDRESSES[y])
    elif name == "isolate":
        connectivity.isolate(
            ADDRESSES[x], [a for a in ADDRESSES if a != ADDRESSES[x]]
        )
    elif name == "reconnect":
        connectivity.reconnect(
            ADDRESSES[x], [a for a in ADDRESSES if a != ADDRESSES[x]]
        )
    elif name == "partition":
        groups = [
            [a for a, side in zip(ADDRESSES, x) if side],
            [a for a, side in zip(ADDRESSES, x) if not side],
        ]
        connectivity.partition([g for g in groups if g])
    elif name == "heal":
        connectivity.heal()
    elif name == "crash":
        if nodes[x].up:
            nodes[x].crash()
    elif name == "recover":
        if not nodes[x].up:
            nodes[x].recover()
    else:  # pragma: no cover - strategy and dispatch must stay in sync
        raise AssertionError(f"unknown operation {name!r}")


class TestReachabilityCacheProperty:
    @given(schedule=st.lists(operations, min_size=0, max_size=30))
    @settings(max_examples=150, deadline=None)
    def test_cached_reachable_equals_fresh_recomputation(self, schedule):
        network, connectivity, nodes = _build()
        for op in schedule:
            _apply(network, connectivity, nodes, op)
            # Query after every transition: interleaving reads between
            # writes is exactly what ages a stale cache into a wrong
            # answer.
            for i in range(N_NODES):
                for j in range(N_NODES):
                    expected = _fresh_reachable(connectivity, nodes, i, j)
                    actual = network.reachable(ADDRESSES[i], ADDRESSES[j])
                    assert actual == expected, (
                        f"{ADDRESSES[i]}->{ADDRESSES[j]}: cached {actual}, "
                        f"fresh {expected} after {op}"
                    )

    def test_unregistered_address_is_unreachable(self):
        network, _, _ = _build()
        assert not network.reachable("n0", "ghost")
        assert not network.reachable("ghost", "n0")
