"""Tests for seeded RNG streams."""

from __future__ import annotations

from repro.sim.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "network") == derive_seed(1, "network")

    def test_differs_by_name(self):
        assert derive_seed(1, "network") != derive_seed(1, "failures")

    def test_differs_by_master(self):
        assert derive_seed(1, "network") != derive_seed(2, "network")

    def test_is_64_bit(self):
        assert 0 <= derive_seed(123, "x") < 2**64


class TestRngStreams:
    def test_streams_are_memoised(self):
        streams = RngStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_independent(self):
        """Draws from one stream do not perturb another."""
        fresh = RngStreams(5)
        expected = fresh.stream("b").random()

        perturbed = RngStreams(5)
        perturbed.stream("a").random()  # extra draw on a different stream
        assert perturbed.stream("b").random() == expected

    def test_reproducible_across_instances(self):
        a = RngStreams(9).stream("net").random()
        b = RngStreams(9).stream("net").random()
        assert a == b

    def test_different_master_seeds_differ(self):
        assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()

    def test_spawn_creates_independent_family(self):
        parent = RngStreams(3)
        child_a = parent.spawn("rep1")
        child_b = parent.spawn("rep2")
        assert child_a.master_seed != child_b.master_seed
        assert child_a.stream("x").random() != child_b.stream("x").random()

    def test_spawn_deterministic(self):
        assert RngStreams(3).spawn("r").master_seed == RngStreams(3).spawn("r").master_seed
