"""Unit tests for the pluggable schedulers and engine edge cases.

The scheduler-level tests drive ``HeapScheduler``/``CalendarScheduler``
directly through the ``push``/``pop`` interface and assert the one
contract that matters: entries come back in exactly ``sorted(entries)``
order.  The engine-level tests exercise the edge cases the calendar
structure makes interesting — zero-delay self-reschedules (current-day
inserts during a drain), far-future timers (overflow-ladder promotion),
cancel-then-reinsert churn, and ``run(until=...)`` termination on an
empty queue — parametrized over both schedulers.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Environment
from repro.sim.scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULER_ENV_VAR,
    CalendarScheduler,
    HeapScheduler,
    Scheduler,
    available_schedulers,
    make_scheduler,
)

SCHEDULERS = available_schedulers()


def drain(scheduler: Scheduler):
    out = []
    while True:
        entry = scheduler.pop()
        if entry is None:
            break
        out.append(entry)
    return out


class TestMakeScheduler:
    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV_VAR, raising=False)
        assert DEFAULT_SCHEDULER == "heap"
        assert isinstance(make_scheduler(), HeapScheduler)

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
        assert isinstance(make_scheduler(), CalendarScheduler)
        # An explicit argument beats the environment variable.
        assert isinstance(make_scheduler("heap"), HeapScheduler)

    def test_empty_env_var_falls_back(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "")
        assert isinstance(make_scheduler(), HeapScheduler)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="calendar.*heap|heap.*calendar"):
            make_scheduler("splay")

    def test_instance_passthrough(self):
        scheduler = CalendarScheduler()
        assert make_scheduler(scheduler) is scheduler

    def test_nonempty_instance_rejected(self):
        scheduler = HeapScheduler()
        scheduler.push((1.0, 0, None))
        with pytest.raises(ValueError, match="empty"):
            make_scheduler(scheduler)

    def test_registry_names(self):
        assert SCHEDULERS == ["calendar", "heap"]


@pytest.mark.parametrize("name", SCHEDULERS)
class TestSchedulerContract:
    def test_empty_pops_none(self, name):
        scheduler = make_scheduler(name)
        assert scheduler.pop() is None
        assert scheduler.pop_at_most(1e9) is None
        assert scheduler.peek() == float("inf")
        assert len(scheduler) == 0

    def test_sorted_order_random_times(self, name):
        rng = random.Random(42)
        scheduler = make_scheduler(name)
        entries = [(rng.uniform(0.0, 500.0), eid, None) for eid in range(2000)]
        for entry in entries:
            scheduler.push(entry)
        assert len(scheduler) == 2000
        assert sorted(scheduler.entries()) == sorted(entries)
        assert drain(scheduler) == sorted(entries)

    def test_ties_break_on_eid(self, name):
        scheduler = make_scheduler(name)
        for eid in (5, 3, 9, 1):
            scheduler.push((7.0, eid, None))
        assert [entry[1] for entry in drain(scheduler)] == [1, 3, 5, 9]

    def test_interleaved_push_pop_monotone(self, name):
        # Pops never go backwards even when pushes land at the current
        # instant between pops (the zero-delay shape).
        rng = random.Random(7)
        scheduler = make_scheduler(name)
        eid = 0
        for _ in range(64):
            scheduler.push((rng.uniform(0.0, 50.0), eid, None))
            eid += 1
        popped = []
        now = 0.0
        for _ in range(4000):
            entry = scheduler.pop()
            if entry is None:
                break
            assert entry[0] >= now
            now = entry[0]
            popped.append(entry)
            if len(popped) < 2000:
                scheduler.push((now + rng.choice([0.0, 0.1, 8.0]), eid, None))
                eid += 1
        assert popped == sorted(popped)
        assert scheduler.pop() is None

    def test_pop_at_most_respects_horizon(self, name):
        scheduler = make_scheduler(name)
        scheduler.push((1.0, 0, None))
        scheduler.push((2.0, 1, None))
        assert scheduler.pop_at_most(0.5) is None
        assert scheduler.pop_at_most(1.0) == (1.0, 0, None)
        assert scheduler.pop_at_most(1.5) is None
        # A later push below the old horizon must still come out first.
        scheduler.push((1.25, 2, None))
        assert scheduler.pop_at_most(2.0) == (1.25, 2, None)
        assert scheduler.pop_at_most(2.0) == (2.0, 1, None)
        assert scheduler.pop_at_most(2.0) is None


class TestCalendarInternals:
    def test_far_future_lands_in_overflow_and_promotes(self):
        scheduler = CalendarScheduler(day_width=1.0, days=64)
        near = (3.0, 0, None)
        far = (1e6, 1, None)
        scheduler.push(near)
        scheduler.push(far)
        assert len(scheduler._overflow) == 1
        assert scheduler.pop() == near
        # Draining the calendar must rebase the window onto the
        # overflow minimum and promote it.
        assert scheduler.pop() == far
        assert scheduler.pop() is None

    def test_resize_engages_and_keeps_order(self):
        rng = random.Random(3)
        scheduler = CalendarScheduler()
        entries = [(rng.uniform(0.0, 10_000.0), eid, None) for eid in range(5000)]
        for entry in entries:
            scheduler.push(entry)
        assert scheduler.resizes > 0
        assert drain(scheduler) == sorted(entries)

    def test_width_retunes_to_population(self):
        scheduler = CalendarScheduler(day_width=1000.0)
        for eid in range(1000):
            scheduler.push((eid * 0.001, eid, None))
        # The initial width would cram every entry into one day; after
        # the growth resizes the width must track the observed gaps.
        assert scheduler._width < 1000.0
        assert len(scheduler) == 1000

    def test_empty_structure_reanchors_on_push(self):
        scheduler = CalendarScheduler(day_width=1.0, days=64)
        scheduler.push((1e9, 0, None))  # far beyond the initial window
        assert not scheduler._overflow  # re-anchored, not overflowed
        assert scheduler.pop() == (1e9, 0, None)

    def test_push_below_window_anchor_rebuilds(self):
        # Prefill only far-future entries: the growth resizes anchor
        # the window on their minimum.  Near-now pushes then land far
        # below the cursor and must still drain in sorted order
        # (regression: they used to alias into already-passed buckets).
        scheduler = CalendarScheduler()
        ballast = [(50.0 + i * 0.001, i, None) for i in range(1000)]
        for entry in ballast:
            scheduler.push(entry)
        near = [(0.25, 5000, None), (1.5, 5001, None), (49.0, 5002, None)]
        for entry in near:
            scheduler.push(entry)
        assert drain(scheduler) == sorted(ballast + near)

    def test_push_slightly_below_cursor_rewinds(self):
        # The alias-free rewind branch: the cursor advanced past a day
        # via peek, then a push lands just behind it.
        scheduler = CalendarScheduler(day_width=1.0, days=64)
        scheduler.push((100.0, 0, None))
        scheduler.push((160.0, 1, None))
        assert scheduler.pop() == (100.0, 0, None)
        assert scheduler.peek() == 160.0  # commits the cursor forward
        scheduler.push((120.0, 2, None))
        assert drain(scheduler) == [(120.0, 2, None), (160.0, 1, None)]

    def test_overflow_backlog_does_not_shrink_storm(self):
        # When ``days`` is pinned at its cap, a large far-future backlog
        # stays in overflow and the calendar window is legitimately
        # small.  The shrink trigger must key on the *total* population
        # (regression: keying on the window count alone re-ran the O(n)
        # rebuild on every subsequent pop).
        class SmallCalendar(CalendarScheduler):
            _MAX_DAYS = 256

        scheduler = SmallCalendar()
        entries = [(i * 0.01, i, None) for i in range(100)]
        entries += [(50.0 + i * 0.0005, 1000 + i, None) for i in range(2000)]
        for entry in entries:
            scheduler.push(entry)
        before = scheduler.resizes
        popped = [scheduler.pop() for _ in range(200)]
        assert popped == sorted(entries)[:200]
        assert scheduler.resizes - before <= 2

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CalendarScheduler(day_width=0.0)
        with pytest.raises(ValueError):
            CalendarScheduler(days=0)


@pytest.mark.parametrize("name", SCHEDULERS)
class TestEngineEdgeCases:
    def test_zero_delay_self_reschedule(self, name):
        env = Environment(scheduler=name)
        fired = []

        def spinner():
            for step in range(5):
                yield env.timeout(0.0)
                fired.append((env.now, step))
            yield env.timeout(1.0)
            fired.append((env.now, "later"))

        env.process(spinner())
        env.run()
        assert fired == [(0.0, 0), (0.0, 1), (0.0, 2), (0.0, 3), (0.0, 4),
                         (1.0, "later")]

    def test_far_future_overflow_promotion(self, name):
        env = Environment(scheduler=name)
        fired = []

        def program():
            yield env.timeout(0.5)
            fired.append(env.now)
            yield env.timeout(1e7)  # far outside any initial window
            fired.append(env.now)
            yield env.timeout(0.25)
            fired.append(env.now)

        env.process(program())
        env.run()
        assert fired == [0.5, 1e7 + 0.5, 1e7 + 0.75]

    def test_cancel_then_reinsert_same_event(self, name):
        env = Environment(scheduler=name)
        log = []
        # Cancelling a timer and scheduling a replacement at the same
        # instant must not disturb ordering around the dead entry.
        loser = env.timeout(2.0)
        loser.cancel()
        replacement = env.timeout(2.0, value="replacement")
        replacement.add_callback(lambda event: log.append((env.now, event.value)))
        env.timeout(3.0, value="after").add_callback(
            lambda event: log.append((env.now, event.value))
        )
        env.run()
        assert log == [(2.0, "replacement"), (3.0, "after")]
        assert env.dead_pops == 1
        assert env.now == 3.0

    def test_empty_queue_run_until_terminates(self, name):
        env = Environment(scheduler=name)
        env.run(until=12.5)
        assert env.now == 12.5
        # And again: back-to-back horizons stay contiguous with nothing
        # queued.
        env.run(until=20.0)
        assert env.now == 20.0

    def test_run_until_then_drain(self, name):
        env = Environment(scheduler=name)
        fired = []
        for delay in (1.0, 4.0, 9.0):
            env.timeout(delay, value=delay).add_callback(
                lambda event: fired.append(event.value)
            )
        env.run(until=5.0)
        assert fired == [1.0, 4.0]
        assert env.now == 5.0
        env.run()
        assert fired == [1.0, 4.0, 9.0]
        assert env.now == 9.0

    def test_dead_pops_counted_per_scheduler(self, name):
        env = Environment(scheduler=name)
        for _ in range(10):
            env.timeout(1.0).cancel()
        env.timeout(2.0)
        env.run()
        assert env.dead_pops == 10
        assert env.now == 2.0
        assert env.scheduler_name == name
