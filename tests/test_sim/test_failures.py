"""Tests for crash/recovery injection."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Environment
from repro.sim.failures import CrashRecoveryInjector, schedule_crash, schedule_recovery
from repro.sim.node import Node
from repro.sim.trace import TraceKind, Tracer


class HookedNode(Node):
    def __init__(self, address):
        super().__init__(address)
        self.crashes = 0
        self.recoveries = 0

    def on_crash(self):
        self.crashes += 1

    def on_recover(self):
        self.recoveries += 1

    def handle_message(self, src, message):
        pass


class TestNodeFailureState:
    def test_crash_and_recover_toggle_up(self):
        node = HookedNode("n")
        node.crash()
        assert not node.up and node.crashes == 1
        node.recover()
        assert node.up and node.recoveries == 1

    def test_idempotent(self):
        node = HookedNode("n")
        node.crash()
        node.crash()
        assert node.crashes == 1
        node.recover()
        node.recover()
        assert node.recoveries == 1


class TestScheduledFailures:
    def test_schedule_crash_and_recovery(self, env, tracer):
        node = HookedNode("n")
        schedule_crash(env, node, at=10.0, tracer=tracer)
        schedule_recovery(env, node, at=20.0, tracer=tracer)
        env.run(until=15.0)
        assert not node.up
        env.run(until=25.0)
        assert node.up
        assert tracer.count(TraceKind.HOST_CRASHED) == 1
        assert tracer.count(TraceKind.HOST_RECOVERED) == 1

    def test_past_time_rejected(self, env):
        node = HookedNode("n")
        env.run(until=10.0)
        process = schedule_crash(env, node, at=5.0)
        env.run()
        assert process.ok is False
        assert isinstance(process.value, ValueError)


class TestInjector:
    def test_steady_state_availability_formula(self, env):
        injector = CrashRecoveryInjector(
            env, [HookedNode("n")], mttf=90.0, mttr=10.0
        )
        assert injector.steady_state_availability == pytest.approx(0.9)

    def test_nodes_cycle_through_failures(self, env):
        nodes = [HookedNode(f"n{i}") for i in range(3)]
        CrashRecoveryInjector(
            env, nodes, mttf=50.0, mttr=10.0, rng=random.Random(1)
        )
        env.run(until=2_000.0)
        for node in nodes:
            assert node.crashes > 0
            assert node.recoveries > 0

    def test_measured_availability_near_formula(self, env):
        node = HookedNode("n")
        injector = CrashRecoveryInjector(
            env, [node], mttf=80.0, mttr=20.0, rng=random.Random(2)
        )
        up_time = 0.0
        for _ in range(20_000):
            env.run(until=env.now + 1.0)
            if node.up:
                up_time += 1.0
        assert up_time / 20_000 == pytest.approx(
            injector.steady_state_availability, abs=0.05
        )

    def test_invalid_params_rejected(self, env):
        with pytest.raises(ValueError):
            CrashRecoveryInjector(env, [], mttf=0.0, mttr=1.0)
        with pytest.raises(ValueError):
            CrashRecoveryInjector(env, [], mttf=1.0, mttr=-1.0)
