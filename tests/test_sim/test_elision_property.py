"""Property test: dead-timer elision never changes event ordering.

The elision machinery (``Timeout.cancel`` + the run loop's dead-entry
skip + the Condition loser-detach) is pure bookkeeping: a cancelled
timer had no waiter and no callbacks, so processing it would have been
a no-op.  The safety property is exact equivalence of the *observable
schedule*: for any protocol-shaped program — request/reply races,
retry-until-acked pacing loops, interrupts — running with
``elide_dead_timers=True`` and ``False`` must produce identical
``(time, actor, happening)`` streams and identical final clocks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment, Interrupt

# Delays drawn from a tiny grid so simultaneous events (the tie-break
# path) occur constantly.
delays = st.sampled_from([0.5, 1.0, 1.0, 1.5, 2.0, 3.0])

# One request/reply-shaped round: a "reply" timer races a retry timer,
# exactly the ``messaging.request`` shape.  ``reply_delay > timer_delay``
# means the round times out (the reply fires later, unobserved).
rounds = st.tuples(delays, delays, delays)  # (reply_delay, timer_delay, pause)

# A host: its start offset plus a handful of rounds.
hosts = st.tuples(delays, st.lists(rounds, min_size=1, max_size=4))


def _run(schedule, elide):
    env = Environment(elide_dead_timers=elide)
    log = []

    def host(pid, start, ops):
        yield env.timeout(start)
        for op_index, (reply_delay, timer_delay, pause) in enumerate(ops):
            reply = env.timeout(reply_delay, value=("reply", pid, op_index))
            timer = env.timeout(timer_delay)
            result = yield env.any_of([reply, timer])
            winner = "reply" if reply in result else "timeout"
            log.append((env.now, pid, op_index, winner))
            yield env.timeout(pause)
        log.append((env.now, pid, "done"))

    def pacing(pid, interval, acked):
        # The retry_until_acked shape: a pacing timer repeatedly races
        # the ack event; every losing timer is elision fodder.
        beats = 0
        while not acked.triggered:
            timer = env.timeout(interval)
            yield env.any_of([acked, timer])
            timer.cancel()
            beats += 1
            if beats > 50:  # safety net; unreachable for the grid above
                break
        log.append((env.now, pid, "acked", beats))

    def acker(acked, delay):
        yield env.timeout(delay)
        log.append((env.now, "acker", "fire"))
        acked.succeed()

    def sleeper(pid):
        try:
            yield env.timeout(1000.0)
        except Interrupt as interrupt:
            log.append((env.now, pid, "interrupted", interrupt.cause))

    def interrupter(target, delay):
        yield env.timeout(delay)
        target.interrupt("deadline")

    for pid, (start, ops) in enumerate(schedule):
        env.process(host(pid, start, ops), name=f"host{pid}")
        acked = env.event()
        env.process(pacing(f"pacer{pid}", 1.0 + 0.5 * (pid % 3), acked))
        env.process(acker(acked, start + 2.5))
        target = env.process(sleeper(f"sleeper{pid}"))
        env.process(interrupter(target, start + 1.5))
    env.run()
    return log, env.now, env.dead_pops


@given(st.lists(hosts, min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_elision_preserves_event_ordering(schedule):
    with_elision, now_with, dead_pops = _run(schedule, elide=True)
    without_elision, now_without, no_pops = _run(schedule, elide=False)
    assert with_elision == without_elision
    assert now_with == now_without
    # Not vacuous: these schedules race timers constantly, so elision
    # must actually skip entries — and never when disabled.
    assert dead_pops > 0
    assert no_pops == 0
