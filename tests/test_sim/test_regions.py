"""Unit tests for the region-sharded engine layer (sim/regions.py).

The scenario here is a deliberately tiny ping-pong: two (or three)
regions of one node each, every delivery answered with a reply until a
hop budget runs out.  Small enough to reason about exactly, yet it
exercises every seam — envelope sequencing, lookahead extraction,
window bounds (including the echo bound), and the coupled driver.
"""

from __future__ import annotations

import math

import pytest

from repro.sim.engine import Environment, SimulationError
from repro.sim.network import FixedLatency, UniformLatency
from repro.sim.node import Node
from repro.sim.regions import (
    ENVELOPE_EID_BASE,
    Envelope,
    Region,
    RegionPlan,
    RegionalLatency,
    RegionalNetwork,
    canonical_trace,
    envelope_eid,
    extract_lookahead,
    merge_region_traces,
    run_coupled,
)
from repro.sim.trace import Tracer


class _Echo(Node):
    """Replies to every message until its hop counter is exhausted."""

    def __init__(self, address: str, peer: str, hops: int):
        super().__init__(address)
        self.peer = peer
        self.hops = hops
        self.log = []

    def kick(self) -> None:
        self.send(self.peer, ("ping", self.hops))

    def handle_message(self, src, message) -> None:
        self.log.append((self.env.now, src, message))
        kind, hops = message
        if hops > 0:
            self.send(src, ("pong" if kind == "ping" else "ping", hops - 1))


def _build(n_regions: int, hops: int = 8, inter: float = 0.08):
    """``n_regions`` single-node regions in a reply ring."""
    names = [f"r{i}n" for i in range(n_regions)]
    plan = RegionPlan.by_groups([[name] for name in names])
    latency = RegionalLatency(plan, intra=0.01, inter=inter)
    regions = []
    nodes = []
    for i, name in enumerate(names):
        env = Environment()
        network = RegionalNetwork(
            env, i, plan, latency=latency, tracer=Tracer(env)
        )
        node = _Echo(name, names[(i + 1) % n_regions], hops)
        network.register(node)
        regions.append(Region(i, env, network))
        nodes.append(node)
    plan.bind(regions)
    return plan, regions, nodes


def _flat(n_regions: int, hops: int = 8, inter: float = 0.08):
    """The same ring in one environment, for differential checks."""
    names = [f"r{i}n" for i in range(n_regions)]
    plan = RegionPlan.by_groups([[name] for name in names])
    latency = RegionalLatency(plan, intra=0.01, inter=inter)
    env = Environment()
    from repro.sim.network import Network

    network = Network(env, latency=latency, tracer=Tracer(env))
    nodes = [
        network.register(_Echo(name, names[(i + 1) % n_regions], hops))
        for i, name in enumerate(names)
    ]
    return env, nodes


class TestRegionPlan:
    def test_table_assignment_and_lookup(self):
        plan = RegionPlan(2, {"a": 0, "b": 1})
        assert plan.region_of("a") == 0
        assert plan.region_of("b") == 1
        with pytest.raises(ValueError, match="not covered"):
            plan.region_of("zzz")

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            RegionPlan(2, {"a": 2})
        with pytest.raises(ValueError, match="at least one region"):
            RegionPlan(0)

    def test_callable_assignment(self):
        plan = RegionPlan(4, lambda address: int(address[1]) % 4)
        assert plan.region_of("g3m0") == 3

    def test_by_groups(self):
        plan = RegionPlan.by_groups([["a", "b"], ["c"]])
        assert plan.n_regions == 2
        assert plan.region_of("c") == 1

    def test_bind_arity_checked(self):
        plan = RegionPlan(2, {"a": 0, "b": 1})
        with pytest.raises(ValueError, match="2 regions"):
            plan.bind([])


class TestEnvelopeSequencing:
    def test_eids_negative_and_ordered(self):
        """Envelope eids sort before any local eid (which count from 0)
        and order by (src_region, seq) within a timestamp."""
        eids = [
            envelope_eid(region, seq)
            for region in range(3)
            for seq in range(3)
        ]
        assert all(eid < 0 for eid in eids)
        assert eids == sorted(eids)
        assert envelope_eid(0, 0) == ENVELOPE_EID_BASE

    def test_envelope_fields(self):
        envelope = Envelope(1.5, 0, 7, "a", "b", ("m",))
        assert envelope.time == 1.5
        assert envelope.dst == "b"


class TestLookahead:
    def test_regional_latency_cross_min(self):
        plan = RegionPlan(2, {"a": 0, "b": 1})
        latency = RegionalLatency(plan, intra=0.01, inter=0.08)
        assert latency.cross_min_delay() == 0.08
        assert latency.min_delay() == 0.01
        assert latency.constant_delay() is None
        assert extract_lookahead(latency) == 0.08

    def test_uniform_intra_has_constant_delay(self):
        plan = RegionPlan(1, {"a": 0})
        latency = RegionalLatency(plan, intra=0.05, inter=0.05)
        assert latency.constant_delay() == 0.05

    def test_inter_must_be_positive(self):
        plan = RegionPlan(2, {"a": 0, "b": 1})
        with pytest.raises(ValueError):
            RegionalLatency(plan, intra=0.01, inter=0.0)

    def test_extract_falls_back_to_min_delay(self):
        assert extract_lookahead(FixedLatency(0.05)) == 0.05
        assert extract_lookahead(UniformLatency(0.02, 0.09)) == 0.02

    def test_extract_rejects_zero_lookahead(self):
        with pytest.raises(ValueError, match="lookahead"):
            extract_lookahead(FixedLatency(0.0))


class TestRegionWindows:
    def test_next_time_covers_pending_envelopes(self):
        plan, regions, nodes = _build(2)
        region = regions[0]
        assert region.next_time() == math.inf
        region.pending.append(Envelope(0.3, 1, 0, "r1n", "r0n", ("ping", 0)))
        assert region.next_time() == 0.3

    def test_causality_violation_detected(self):
        plan, regions, nodes = _build(2)
        region = regions[0]
        region.env.run(until=1.0)
        region.pending.append(Envelope(0.5, 1, 0, "r1n", "r0n", ("ping", 0)))
        with pytest.raises(SimulationError, match="causality"):
            region.run_window(2.0)

    def test_window_is_exclusive_of_bound(self):
        plan, regions, nodes = _build(2)
        region = regions[0]

        def sender():
            nodes[0].kick()
            yield region.env.timeout(0.0)

        region.env.process(sender())  # process-start event at t=0
        region.run_window(0.0)  # exclusive: nothing strictly before 0
        assert not region.network.outbox
        region.run_window(0.0, inclusive=True)
        assert len(region.network.outbox) == 1


class TestCoupledDriver:
    @pytest.mark.parametrize("n_regions", [2, 3])
    def test_matches_flat_run(self, n_regions):
        plan, regions, nodes = _build(n_regions, hops=9)
        nodes[0].kick()
        stats = run_coupled(plan, until=10.0)
        flat_env, flat_nodes = _flat(n_regions, hops=9)
        flat_nodes[0].kick()
        flat_env.run(until=10.0)
        for node, flat_node in zip(nodes, flat_nodes):
            assert node.log == flat_node.log
        assert [region.env.now for region in regions] == [10.0] * n_regions
        assert stats["mode"] == "coupled"
        assert stats["envelopes"] == sum(
            region.network.envelopes_out for region in regions
        )

    def test_until_truncates_identically(self):
        plan, regions, nodes = _build(2, hops=50)
        nodes[0].kick()
        run_coupled(plan, until=1.0)
        flat_env, flat_nodes = _flat(2, hops=50)
        flat_nodes[0].kick()
        flat_env.run(until=1.0)
        assert nodes[0].log == flat_nodes[0].log
        assert nodes[1].log == flat_nodes[1].log

    def test_open_ended_run_drains(self):
        plan, regions, nodes = _build(2, hops=5)
        nodes[0].kick()
        run_coupled(plan, until=None)
        assert sum(len(node.log) for node in nodes) == 6  # kick + 5 replies

    def test_unbound_plan_raises(self):
        plan = RegionPlan(2, {"a": 0, "b": 1})
        with pytest.raises(SimulationError, match="not bound"):
            run_coupled(plan, until=1.0)


class _Rec:
    """Minimal record for the trace-merge helpers."""

    __slots__ = ("time", "key")

    def __init__(self, time, key):
        self.time = time
        self.key = key


class TestTraceMerge:
    def test_merge_is_order_of_time_key_position(self):
        key_of = lambda record: record.key  # noqa: E731
        a = [_Rec(0.0, 0), _Rec(1.0, 0), _Rec(1.0, 0)]
        b = [_Rec(0.5, 1), _Rec(1.0, 1)]
        merged = merge_region_traces([a, b], key_of=key_of)
        assert [(r.time, r.key) for r in merged] == [
            (0.0, 0), (0.5, 1), (1.0, 0), (1.0, 0), (1.0, 1)
        ]

    def test_canonical_trace_matches_merge(self):
        key_of = lambda record: record.key  # noqa: E731
        a = [_Rec(0.0, 0), _Rec(1.0, 0), _Rec(1.0, 0)]
        b = [_Rec(0.5, 1), _Rec(1.0, 1)]
        flat = [a[0], b[0], a[1], a[2], b[1]]
        assert canonical_trace(flat, key_of) == merge_region_traces(
            [a, b], key_of=key_of
        )


class TestEnvironmentSeam:
    def test_run_partitioned_none_plan_is_plain_run(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(1.0)
            fired.append(env.now)

        env.process(proc())
        stats = env.run_partitioned(None, until=5.0)
        assert fired == [1.0]
        assert env.now == 5.0
        assert stats["mode"] == "single"
        assert stats["nulls_sent"] == 0

    def test_run_partitioned_requires_membership(self):
        plan, regions, nodes = _build(2)
        outsider = Environment()
        with pytest.raises(SimulationError, match="not one of the plan"):
            outsider.run_partitioned(plan, until=1.0)

    def test_schedule_external_rejects_past(self):
        env = Environment()
        env.run(until=1.0)
        with pytest.raises(SimulationError):
            env.schedule_external(0.5, envelope_eid(0, 0), object())
