"""Tests for the example applications."""

from __future__ import annotations

import pytest

from repro.apps.infoservice import InfoCommand, InfoResult, OrgInfoService
from repro.apps.newspaper import OnlineNewspaper
from repro.apps.stockquote import StockQuoteService


class TestStockQuotes:
    def test_quote_structure(self):
        service = StockQuoteService()
        quote = service.handle_request("u", "acme")
        assert quote.ticker == "ACME"
        assert quote.price > 0
        assert quote.serial == 1

    def test_prices_walk_deterministically(self):
        a = StockQuoteService()
        b = StockQuoteService()
        prices_a = [a.handle_request("u", "X").price for _ in range(10)]
        prices_b = [b.handle_request("u", "X").price for _ in range(10)]
        assert prices_a == prices_b

    def test_tickers_independent(self):
        service = StockQuoteService()
        service.handle_request("u", "AAA")
        quote = service.handle_request("u", "BBB")
        assert quote.serial == 1

    def test_price_never_nonpositive(self):
        service = StockQuoteService(base_price=0.05, volatility=1.0)
        for _ in range(200):
            assert service.handle_request("u", "Z").price > 0

    def test_invalid_payload_rejected(self):
        service = StockQuoteService()
        with pytest.raises(ValueError):
            service.handle_request("u", 42)
        with pytest.raises(ValueError):
            service.handle_request("u", "")

    def test_request_counter(self):
        service = StockQuoteService()
        service.handle_request("u", "A")
        service.handle_request("u", "B")
        assert service.requests_served == 2


class TestOrgInfo:
    def test_write_read_roundtrip(self):
        service = OrgInfoService()
        assert service.handle_request("u", InfoCommand("write", "k", "v")).ok
        result = service.handle_request("u", InfoCommand("read", "k"))
        assert result.ok and result.value == "v"

    def test_read_missing_key(self):
        result = OrgInfoService().handle_request("u", InfoCommand("read", "nope"))
        assert not result.ok and "no such key" in result.error

    def test_delete(self):
        service = OrgInfoService()
        service.handle_request("u", InfoCommand("write", "k", 1))
        assert service.handle_request("u", InfoCommand("delete", "k")).ok
        assert not service.handle_request("u", InfoCommand("delete", "k")).ok

    def test_list_sorted(self):
        service = OrgInfoService()
        service.handle_request("u", InfoCommand("write", "b", 1))
        service.handle_request("u", InfoCommand("write", "a", 1))
        assert service.handle_request("u", InfoCommand("list")).value == ["a", "b"]

    def test_bad_payloads(self):
        service = OrgInfoService()
        assert not service.handle_request("u", "not-a-command").ok
        assert not service.handle_request("u", InfoCommand("frobnicate")).ok
        assert not service.handle_request("u", InfoCommand("write")).ok

    def test_audit_log(self):
        service = OrgInfoService()
        service.handle_request("alice", InfoCommand("write", "k", 1))
        service.handle_request("bob", InfoCommand("read", "k"))
        service.handle_request("alice", InfoCommand("read", "k"))
        assert service.accesses_by("alice") == [
            ("alice", "write", "k"),
            ("alice", "read", "k"),
        ]


class TestNewspaper:
    def test_first_edition_published_at_start(self):
        paper = OnlineNewspaper()
        assert paper.latest_edition == 1

    def test_read_latest_section(self):
        paper = OnlineNewspaper()
        article = paper.handle_request("u", "front")
        assert article.edition == 1 and article.section == "front"
        assert paper.reads_served == 1

    def test_read_specific_edition(self):
        paper = OnlineNewspaper()
        paper.publish_edition()
        article = paper.handle_request("u", (1, "sports"))
        assert article.edition == 1

    def test_missing_edition_or_section(self):
        paper = OnlineNewspaper()
        assert paper.handle_request("u", (99, "front")) is None
        assert paper.handle_request("u", "horoscope") is None
        assert paper.reads_served == 0

    def test_publish_advances(self):
        paper = OnlineNewspaper()
        assert paper.publish_edition() == 2
        assert paper.handle_request("u", "front").edition == 2
