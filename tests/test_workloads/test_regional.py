"""Differential suite for the region-sharded deployment.

The acceptance property of the whole parallel-simulation PR: for one
scenario (same seed, same fault schedule), the flat single-process run,
the coupled in-process partitioned run at any K, and the forked
multi-worker run all produce **byte-identical** results — canonical
trace, workload counts, network totals, final clocks, and
invariant-oracle counters.  Hypothesis drives the scenario space
(group/region counts, rates, crash/partition/revocation schedules);
fixed-seed cases pin the forked path, which is too slow to fuzz.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.runtime.pool import _fork_available
from repro.verify import InvariantCounters
from repro.workloads.regional import (
    GroupLatency,
    RegionalDeployment,
    group_of_address,
    group_of_record,
    merge_trace_tuples,
    run_regional_cell,
)

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)


def _run(groups, regions, jobs=1, schedule=(), seed=0, duration=12.0,
         **overrides):
    deployment = RegionalDeployment(
        groups=groups,
        regions=regions,
        n_managers=overrides.pop("n_managers", 3),
        n_hosts=overrides.pop("n_hosts", 2),
        population=overrides.pop("population", 120),
        access_rate=overrides.pop("access_rate", 4.0),
        remote_rate=overrides.pop("remote_rate", 1.0),
        update_rate=overrides.pop("update_rate", 0.4),
        seed=seed,
        schedule=schedule,
        keep_trace_log=True,
        raise_on_violation=False,
        **overrides,
    )
    return deployment.run(duration, jobs=jobs)


def _assert_identical(reference, candidate):
    assert candidate["counts"] == reference["counts"]
    assert candidate["by_group"] == reference["by_group"]
    assert candidate["updates"] == reference["updates"]
    for key in ("sent", "delivered", "dropped"):
        assert candidate["net"][key] == reference["net"][key]
    assert candidate["invariant_counters"] == reference["invariant_counters"]
    assert (
        candidate["invariant_violations"] == reference["invariant_violations"]
    )
    assert set(candidate["final_times"]) == set(reference["final_times"])
    ref_trace, got_trace = reference["trace"], candidate["trace"]
    assert len(got_trace) == len(ref_trace)
    for index, (got, want) in enumerate(zip(got_trace, ref_trace)):
        assert got == want, (
            f"canonical trace diverges at record {index}:\n"
            f"  got:  {got!r}\n  want: {want!r}"
        )


# ------------------------------------------------------------- strategies

fault_events = st.one_of(
    st.tuples(
        st.just("crash"),
        st.integers(0, 3),                      # group (clamped by caller)
        st.sampled_from(["host", "manager"]),
        st.integers(0, 3),                      # index (modulo pool size)
        st.floats(0.5, 6.0),                    # down at
        st.floats(6.5, 11.0),                   # up at
    ),
    st.tuples(
        st.just("partition"),
        st.integers(0, 3),
        st.integers(0, 2),                      # manager i
        st.integers(0, 2),                      # manager j
        st.floats(0.5, 6.0),
        st.floats(6.5, 11.0),
    ),
)


@st.composite
def scenarios(draw):
    groups = draw(st.integers(2, 4))
    k = draw(st.integers(2, 4).filter(lambda v: v <= groups))
    schedule = [
        event[:1] + (event[1] % groups,) + event[2:]
        for event in draw(st.lists(fault_events, max_size=3))
    ]
    return {
        "groups": groups,
        "regions": k,
        "seed": draw(st.integers(0, 2**16)),
        "schedule": tuple(schedule),
        "update_rate": draw(st.sampled_from([0.0, 0.4, 1.0])),
    }


class TestDifferentialProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=scenarios())
    def test_partitioned_matches_flat(self, scenario):
        """K∈{2,3,4} coupled runs are byte-identical to the flat run
        over random protocol-shaped schedules (crashes, partitions,
        revocation workloads)."""
        k = scenario.pop("regions")
        flat = _run(regions=1, **scenario)
        partitioned = _run(regions=k, **scenario)
        _assert_identical(flat, partitioned)

    @pytest.mark.parametrize("k", [2, 3])
    def test_fixed_cases_all_ks(self, k):
        schedule = (
            ("crash", 1, "host", 0, 3.0, 8.0),
            ("partition", 0, 0, 1, 2.0, 7.0),
        )
        flat = _run(groups=3, regions=1, schedule=schedule, seed=42)
        partitioned = _run(groups=3, regions=k, schedule=schedule, seed=42)
        _assert_identical(flat, partitioned)

    @needs_fork
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_forked_matches_flat(self, jobs):
        schedule = (("crash", 2, "manager", 1, 3.0, 8.0),)
        flat = _run(groups=3, regions=1, schedule=schedule, seed=9)
        forked = _run(groups=3, regions=3, jobs=jobs, schedule=schedule,
                      seed=9)
        assert forked["mode"] == "forked"
        _assert_identical(flat, forked)

    def test_clock_drift_mode_still_identical(self):
        flat = _run(groups=2, regions=1, seed=3, clock_drift=True)
        partitioned = _run(groups=2, regions=2, seed=3, clock_drift=True)
        _assert_identical(flat, partitioned)


class TestDocumentShape:
    def test_flat_mode_is_single(self):
        document = _run(groups=2, regions=1)
        assert document["mode"] == "single"
        assert document["nulls_sent"] == 0
        assert document["regions"] == 1

    def test_coupled_mode_reports_envelopes(self):
        document = _run(groups=2, regions=2)
        assert document["mode"] == "coupled"
        assert document["envelopes"] > 0

    def test_merged_counters_are_mergeable_instances(self):
        document = _run(groups=3, regions=3)
        counters = document["invariant_counters"]
        assert isinstance(counters, InvariantCounters)
        assert counters.total_records > 0
        assert counters.total_violations == 0

    def test_run_regional_cell_document(self):
        document = run_regional_cell(
            n_principals=400, groups=2, regions=2, jobs=1, duration=6.0,
            access_rate=4.0, remote_rate=1.0, update_rate=0.2,
            check_invariants=True,
        )
        for key in ("counts", "nulls_per_real_msg", "wall_seconds",
                    "invariant_counters", "n_principals"):
            assert key in document
        import json

        json.dumps(document)  # must be JSON-serializable as-is


class TestConstruction:
    def test_regions_bounded_by_groups(self):
        with pytest.raises(ValueError, match=r"regions must be in"):
            RegionalDeployment(groups=2, regions=3)

    def test_group_latency_validation(self):
        with pytest.raises(ValueError, match="positive"):
            GroupLatency(intra=0.01, inter=0.0)

    def test_group_of_address(self):
        assert group_of_address("g12m3") == 12
        assert group_of_address("g0h1") == 0
        with pytest.raises(ValueError):
            group_of_address("m3")

    def test_group_of_record_special_sources(self):
        assert group_of_record("grant_seeded", "system",
                               {"application": "svc2"}) == 2
        assert group_of_record("link_down", "scripted",
                               {"a": "g1m0", "b": "g1m2"}) == 1
        assert group_of_record(
            "msg_dropped", "g0m1",
            {"dst": "g3h0", "reason": "destination down"},
        ) == 3
        assert group_of_record(
            "msg_dropped", "g0m1",
            {"dst": "g3h0", "reason": "source down"},
        ) == 0

    def test_merge_trace_tuples_orders_by_time_group(self):
        a = [(0.0, "k", "g0m0", {}), (1.0, "k", "g0m0", {})]
        b = [(0.5, "k", "g1m0", {}), (1.0, "k", "g1m0", {})]
        merged = merge_trace_tuples([a, b])
        assert [record[0] for record in merged] == [0.0, 0.5, 1.0, 1.0]
        assert merged[2][2] == "g0m0"  # group 0 before group 1 at a tie
