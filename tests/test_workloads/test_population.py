"""Tests for user populations."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.workloads.population import UserPopulation


class TestConstruction:
    def test_size_and_names(self):
        population = UserPopulation(5)
        assert len(population) == 5
        assert list(population) == ["u0", "u1", "u2", "u3", "u4"]

    def test_custom_prefix(self):
        assert UserPopulation(2, prefix="client").users == ["client0", "client1"]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UserPopulation(0)
        with pytest.raises(ValueError):
            UserPopulation(5, zipf_s=-1.0)


class TestPopularity:
    def test_probabilities_sum_to_one(self):
        population = UserPopulation(20, zipf_s=1.0)
        total = sum(population.popularity(user) for user in population)
        assert total == pytest.approx(1.0)

    def test_zipf_head_heavier_than_tail(self):
        population = UserPopulation(100, zipf_s=1.0)
        assert population.popularity("u0") > 10 * population.popularity("u99")

    def test_uniform_when_s_zero(self):
        population = UserPopulation(10, zipf_s=0.0)
        assert population.popularity("u0") == pytest.approx(
            population.popularity("u9")
        )

    def test_head(self):
        assert UserPopulation(10).head(3) == ["u0", "u1", "u2"]


class TestSampling:
    def test_deterministic_with_seed(self):
        population = UserPopulation(50)
        a = population.sample_many(random.Random(1), 20)
        b = population.sample_many(random.Random(1), 20)
        assert a == b

    def test_empirical_frequencies_follow_zipf(self):
        population = UserPopulation(10, zipf_s=1.0)
        counts = Counter(population.sample_many(random.Random(2), 20_000))
        assert counts["u0"] / 20_000 == pytest.approx(
            population.popularity("u0"), abs=0.02
        )
        assert counts["u0"] > counts["u9"]

    def test_all_users_reachable(self):
        population = UserPopulation(5, zipf_s=0.5)
        seen = set(population.sample_many(random.Random(3), 2_000))
        assert seen == set(population.users)
