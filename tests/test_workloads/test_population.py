"""Tests for user populations."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.workloads.population import UserPopulation


class TestConstruction:
    def test_size_and_names(self):
        population = UserPopulation(5)
        assert len(population) == 5
        assert list(population) == ["u0", "u1", "u2", "u3", "u4"]

    def test_custom_prefix(self):
        assert UserPopulation(2, prefix="client").users == ["client0", "client1"]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UserPopulation(0)
        with pytest.raises(ValueError):
            UserPopulation(5, zipf_s=-1.0)


class TestPopularity:
    def test_probabilities_sum_to_one(self):
        population = UserPopulation(20, zipf_s=1.0)
        total = sum(population.popularity(user) for user in population)
        assert total == pytest.approx(1.0)

    def test_zipf_head_heavier_than_tail(self):
        population = UserPopulation(100, zipf_s=1.0)
        assert population.popularity("u0") > 10 * population.popularity("u99")

    def test_uniform_when_s_zero(self):
        population = UserPopulation(10, zipf_s=0.0)
        assert population.popularity("u0") == pytest.approx(
            population.popularity("u9")
        )

    def test_head(self):
        assert UserPopulation(10).head(3) == ["u0", "u1", "u2"]


class TestSampling:
    def test_deterministic_with_seed(self):
        population = UserPopulation(50)
        a = population.sample_many(random.Random(1), 20)
        b = population.sample_many(random.Random(1), 20)
        assert a == b

    def test_empirical_frequencies_follow_zipf(self):
        population = UserPopulation(10, zipf_s=1.0)
        counts = Counter(population.sample_many(random.Random(2), 20_000))
        assert counts["u0"] / 20_000 == pytest.approx(
            population.popularity("u0"), abs=0.02
        )
        assert counts["u0"] > counts["u9"]

    def test_all_users_reachable(self):
        population = UserPopulation(5, zipf_s=0.5)
        seen = set(population.sample_many(random.Random(3), 2_000))
        assert seen == set(population.users)


class TestLazyNames:
    """The user universe is virtual: names are arithmetic, not stored."""

    def test_users_compares_equal_to_list(self):
        population = UserPopulation(4)
        assert population.users == ["u0", "u1", "u2", "u3"]
        assert population.users != ["u0", "u1"]

    def test_slicing_and_negative_index(self):
        population = UserPopulation(10)
        assert population.users[2:5] == ["u2", "u3", "u4"]
        assert population.users[-1] == "u9"
        with pytest.raises(IndexError):
            population.users[10]

    def test_membership_is_canonical(self):
        population = UserPopulation(100)
        assert "u99" in population.users
        assert "u100" not in population.users
        assert "u07" not in population.users  # non-canonical spelling
        assert "v1" not in population.users

    def test_index_is_exact_inverse(self):
        population = UserPopulation(1_000_000)
        assert population.users.index("u999999") == 999999
        with pytest.raises(ValueError):
            population.users.index("u1000000")

    def test_no_per_name_storage_at_mega_scale(self):
        # Construction of a 10^6-user population must not materialise
        # names or weights; only sampling builds (numeric) state.
        population = UserPopulation(1_000_000)
        assert population._cumulative is None
        assert population.name_of(123_456) == "u123456"

    def test_name_of_and_index_of_roundtrip(self):
        population = UserPopulation(50, prefix="client")
        for uid in (0, 7, 49):
            assert population.index_of(population.name_of(uid)) == uid

    def test_interner_shares_the_dense_block(self):
        population = UserPopulation(1000)
        ids = population.interner()
        assert ids.get("u0") == 0
        assert ids.get("u999") == 999
        assert len(ids._ids) == 0  # arithmetic, no stored entries


class TestHarmonicSampler:
    """Devroye rejection-inversion: O(1) memory, versioned stream."""

    def test_distribution_matches_popularity(self):
        population = UserPopulation(10, zipf_s=1.0, sampler="harmonic")
        counts = Counter(population.sample_many(random.Random(2), 20_000))
        assert counts["u0"] / 20_000 == pytest.approx(
            population.popularity("u0"), abs=0.02
        )
        assert counts["u0"] > counts["u9"]

    def test_no_cumulative_table_is_built(self):
        population = UserPopulation(1_000_000, sampler="harmonic")
        rng = random.Random(5)
        draws = {population.sample_id(rng) for _ in range(200)}
        assert population._cumulative is None
        assert all(0 <= uid < 1_000_000 for uid in draws)

    def test_uniform_when_s_zero(self):
        population = UserPopulation(5, zipf_s=0.0, sampler="harmonic")
        seen = set(population.sample_many(random.Random(3), 2_000))
        assert seen == set(population.users)

    def test_deterministic_with_seed(self):
        population = UserPopulation(500, sampler="harmonic")
        a = population.sample_many(random.Random(1), 50)
        b = population.sample_many(random.Random(1), 50)
        assert a == b

    def test_exact_sampler_draw_stream_unchanged(self):
        # The default sampler must stay draw-identical to the
        # historical eager implementation (golden traces depend on it).
        population = UserPopulation(50)
        rng = random.Random(1)
        import bisect as _bisect
        import itertools as _itertools

        weights = [1.0 / (rank**1.0) for rank in range(1, 51)]
        total = sum(weights)
        cumulative = list(_itertools.accumulate(w / total for w in weights))
        reference_rng = random.Random(1)
        reference = [
            f"u{min(_bisect.bisect_left(cumulative, reference_rng.random()), 49)}"
            for _ in range(40)
        ]
        assert population.sample_many(rng, 40) == reference

    def test_sampler_name_validated(self):
        with pytest.raises(ValueError):
            UserPopulation(5, sampler="magic")


class TestDiurnalRate:
    def test_rate_oscillates_about_base(self):
        from repro.workloads.population import DiurnalRate

        profile = DiurnalRate(base=10.0, amplitude=0.5, period=100.0)
        assert profile.rate(25.0) == pytest.approx(15.0)  # peak
        assert profile.rate(75.0) == pytest.approx(5.0)  # trough
        assert profile.peak == pytest.approx(15.0)

    def test_validation(self):
        from repro.workloads.population import DiurnalRate

        with pytest.raises(ValueError):
            DiurnalRate(base=0.0)
        with pytest.raises(ValueError):
            DiurnalRate(base=1.0, amplitude=1.5)
        with pytest.raises(ValueError):
            DiurnalRate(base=1.0, period=0.0)
