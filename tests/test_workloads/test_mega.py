"""Tests for the mega-population cell (workloads/mega.py).

The ThresholdOracle is the O(updates)-memory ground truth; the cell
itself is smoke-run at reduced size with the invariant checker on.
"""

from __future__ import annotations

import pytest

from repro.workloads.mega import ThresholdOracle, main, run_mega_cell
from repro.workloads.population import UserPopulation


class TestThresholdOracle:
    def make(self, n=100, granted=60, expiry=30.0):
        population = UserPopulation(n, sampler="harmonic")
        return ThresholdOracle(expiry, population, granted)

    def test_threshold_predicate(self):
        oracle = self.make()
        assert oracle.is_authorized("svc", "u0")
        assert oracle.is_authorized("svc", "u59")
        assert not oracle.is_authorized("svc", "u60")
        assert not oracle.is_authorized("svc", "u99")

    def test_unknown_and_noncanonical_names_denied(self):
        oracle = self.make()
        assert not oracle.is_authorized("svc", "u100")  # out of range
        assert not oracle.is_authorized("svc", "u07")  # non-canonical
        assert not oracle.is_authorized("svc", "mallory")

    def test_count_is_constant_time_and_correct(self):
        oracle = self.make(granted=60)
        assert oracle.authorized_count("svc") == 60
        oracle.grant("svc", "u80")  # new grant: +1
        assert oracle.authorized_count("svc") == 61
        oracle.grant("svc", "u0")  # already authorized: no change
        assert oracle.authorized_count("svc") == 61
        oracle.revoke("svc", "u0", time=5.0)
        assert oracle.authorized_count("svc") == 60
        oracle.revoke("svc", "u99", time=5.0)  # never authorized
        assert oracle.authorized_count("svc") == 60

    def test_overrides_beat_threshold(self):
        oracle = self.make(granted=60)
        oracle.revoke("svc", "u3", time=1.0)
        assert not oracle.is_authorized("svc", "u3")
        oracle.grant("svc", "u90")
        assert oracle.is_authorized("svc", "u90")

    def test_grace_window_after_revocation(self):
        oracle = self.make(granted=60, expiry=30.0)
        oracle.revoke("svc", "u3", time=10.0)
        assert oracle.in_grace("svc", "u3", time=40.0)
        assert not oracle.violation("svc", "u3", time=40.0)
        assert not oracle.in_grace("svc", "u3", time=40.1)
        assert oracle.violation("svc", "u3", time=40.1)

    def test_never_granted_is_violation_immediately(self):
        oracle = self.make(granted=60)
        assert oracle.violation("svc", "u99", time=0.0)

    def test_granted_range_validated(self):
        population = UserPopulation(10, sampler="harmonic")
        with pytest.raises(ValueError):
            ThresholdOracle(30.0, population, 11)
        with pytest.raises(ValueError):
            ThresholdOracle(30.0, population, -1)


class TestRunMegaCell:
    def test_small_cell_with_invariants(self):
        document = run_mega_cell(
            n_principals=5_000,
            shards=2,
            n_managers=3,
            n_hosts=2,
            n_apps=2,
            duration=40.0,
            access_rate=10.0,
            update_rate=0.2,
            seed=3,
            check_invariants=True,
        )
        assert document["attempts"] > 0
        assert document["allowed"] > 0
        assert document["violations"] == 0
        assert document["invariant_violations"] == 0
        assert document["attempts"] == document["allowed"] + document["denied"]
        assert (
            sum(document["attempts_by_shard"].values()) == document["attempts"]
        )
        # Names live arithmetically: seeding must not intern anything new.
        assert document["interned_extras"] == 0
        # Flat columnar storage: a few dozen bytes per ACL entry, not a
        # per-entry Python object graph.
        assert 0 < document["acl_bytes_per_entry"] < 128

    def test_deterministic_across_runs(self):
        kwargs = dict(
            n_principals=2_000, shards=2, n_apps=2, duration=30.0,
            access_rate=8.0, seed=11,
        )
        first = run_mega_cell(**kwargs)
        second = run_mega_cell(**kwargs)
        for key in ("attempts", "allowed", "denied", "attempts_by_shard"):
            assert first[key] == second[key]

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            run_mega_cell(n_principals=0)
        with pytest.raises(ValueError):
            run_mega_cell(n_apps=0)


class TestMegaCli:
    def test_smoke_run_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "mega.json"
        code = main([
            "--principals", "2000", "--shards", "2", "--apps", "2",
            "--duration", "20", "--rate", "8", "--seed", "5",
            "--check-invariants", "--json", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "attempts:" in captured
        assert out.exists()

    def test_budget_gate_fails_when_exceeded(self, capsys):
        code = main([
            "--principals", "1000", "--shards", "2", "--apps", "2",
            "--duration", "10", "--rate", "5", "--budget", "0.0",
        ])
        assert code == 1
        assert "budget exceeded" in capsys.readouterr().err
