"""Tests for the workload generators and the authorization oracle."""

from __future__ import annotations

import pytest

from repro.core.policy import AccessPolicy
from repro.core.rights import Right
from repro.core.system import AccessControlSystem
from repro.sim.network import FixedLatency
from repro.workloads.generators import (
    AccessWorkload,
    AuthorizationOracle,
    UpdateWorkload,
)
from repro.workloads.population import UserPopulation
from repro.workloads.scenarios import steady_state_scenario

APP = "app"


class TestOracle:
    def test_grant_and_revoke(self):
        oracle = AuthorizationOracle(expiry_bound=10.0)
        oracle.grant(APP, "u")
        assert oracle.is_authorized(APP, "u")
        oracle.revoke(APP, "u", time=100.0)
        assert not oracle.is_authorized(APP, "u")

    def test_grace_window(self):
        oracle = AuthorizationOracle(expiry_bound=10.0)
        oracle.grant(APP, "u")
        oracle.revoke(APP, "u", time=100.0)
        assert oracle.in_grace(APP, "u", 105.0)
        assert oracle.in_grace(APP, "u", 110.0)  # boundary inclusive
        assert not oracle.in_grace(APP, "u", 110.1)

    def test_violation_semantics(self):
        oracle = AuthorizationOracle(expiry_bound=10.0)
        oracle.grant(APP, "u")
        assert not oracle.violation(APP, "u", 50.0)  # authorized
        oracle.revoke(APP, "u", time=100.0)
        assert not oracle.violation(APP, "u", 105.0)  # grace
        assert oracle.violation(APP, "u", 150.0)  # stale
        oracle.grant(APP, "u")  # re-granted
        assert not oracle.violation(APP, "u", 200.0)

    def test_never_granted_never_in_grace(self):
        oracle = AuthorizationOracle(expiry_bound=10.0)
        assert not oracle.in_grace(APP, "ghost", 0.0)
        assert oracle.violation(APP, "ghost", 0.0)


def small_system(seed=0):
    return AccessControlSystem(
        n_managers=3,
        n_hosts=2,
        applications=(APP,),
        policy=AccessPolicy(check_quorum=2, expiry_bound=60.0, max_attempts=2,
                            query_timeout=1.0),
        latency=FixedLatency(0.02),
        seed=seed,
    )


class TestAccessWorkload:
    def test_generates_observations_with_ground_truth(self):
        system = small_system()
        population = UserPopulation(10)
        oracle = AuthorizationOracle(60.0)
        for user in population.head(5):
            system.seed_grant(APP, user)
            oracle.grant(APP, user)
        workload = AccessWorkload(
            system, APP, population, oracle, rate=5.0,
            rng=system.streams.stream("w"),
        )
        system.run(until=60.0)
        assert workload.attempts > 100
        finished = workload.observations
        assert len(finished) > 100
        for obs in finished:
            assert obs.authorized == (obs.user in set(population.head(5)))
            if obs.authorized:
                assert obs.decision.allowed

    def test_on_decision_callback(self):
        system = small_system()
        population = UserPopulation(3)
        oracle = AuthorizationOracle(60.0)
        seen = []
        AccessWorkload(
            system, APP, population, oracle, rate=2.0,
            rng=system.streams.stream("w"), on_decision=seen.append,
        )
        system.run(until=20.0)
        assert seen  # callback invoked

    def test_invalid_rate(self):
        system = small_system()
        with pytest.raises(ValueError):
            AccessWorkload(
                system, APP, UserPopulation(3), AuthorizationOracle(60.0), rate=0.0
            )

    def test_skips_crashed_hosts(self):
        system = small_system()
        for host in system.hosts:
            host.crash()
        population = UserPopulation(3)
        oracle = AuthorizationOracle(60.0)
        workload = AccessWorkload(
            system, APP, population, oracle, rate=5.0,
            rng=system.streams.stream("w"),
        )
        system.run(until=10.0)
        assert workload.observations == []


class TestUpdateWorkload:
    def test_issues_adds_and_revokes(self):
        system = small_system()
        population = UserPopulation(10)
        oracle = AuthorizationOracle(60.0)
        for user in population.head(5):
            system.seed_grant(APP, user)
            oracle.grant(APP, user)
        workload = UpdateWorkload(
            system, APP, population, oracle, rate=1.0,
            rng=system.streams.stream("u"), target_fraction=0.5,
        )
        system.run(until=60.0)
        assert workload.adds > 0
        assert workload.revokes > 0

    def test_oracle_tracks_manager_state(self):
        """After the run settles, the oracle and the managers agree."""
        system = small_system()
        population = UserPopulation(6)
        oracle = AuthorizationOracle(60.0)
        UpdateWorkload(
            system, APP, population, oracle, rate=0.5,
            rng=system.streams.stream("u"), target_fraction=0.5,
        )
        system.run(until=100.0)
        system.run(until=140.0)  # quiesce: let dissemination finish
        for user in population:
            assert oracle.is_authorized(APP, user) == system.managers[0].acl(
                APP
            ).check(user, Right.USE)

    def test_on_update_callback(self):
        system = small_system()
        events = []
        UpdateWorkload(
            system, APP, UserPopulation(4), AuthorizationOracle(60.0), rate=1.0,
            rng=system.streams.stream("u"),
            on_update=lambda app, user, grant, t: events.append((user, grant)),
        )
        system.run(until=30.0)
        assert events

    def test_invalid_params(self):
        system = small_system()
        with pytest.raises(ValueError):
            UpdateWorkload(
                system, APP, UserPopulation(3), AuthorizationOracle(60.0), rate=0.0
            )
        with pytest.raises(ValueError):
            UpdateWorkload(
                system, APP, UserPopulation(3), AuthorizationOracle(60.0),
                rate=1.0, target_fraction=1.5,
            )


class TestScenario:
    def test_steady_state_builder(self):
        scenario = steady_state_scenario(
            AccessPolicy(check_quorum=2, expiry_bound=60.0),
            n_managers=3, n_hosts=2, n_users=20, access_rate=3.0,
            update_rate=0.1, seed=1,
        )
        scenario.run(until=60.0)
        assert scenario.access.observations
        assert scenario.updates is not None
        authorized = sum(
            1 for user in scenario.population
            if scenario.oracle.is_authorized(scenario.application, user)
        )
        assert authorized > 0

    def test_updates_optional(self):
        scenario = steady_state_scenario(
            AccessPolicy(check_quorum=1, expiry_bound=60.0),
            n_managers=2, n_hosts=1, n_users=5, update_rate=None, seed=2,
        )
        assert scenario.updates is None


class TestFlashCrowd:
    def test_crowd_completes_and_caches_warm(self):
        from repro.workloads.generators import FlashCrowdWorkload

        system = small_system(seed=42)
        population = UserPopulation(20, prefix="crowd")
        oracle = AuthorizationOracle(60.0)
        for user in population:
            system.seed_grant(APP, user)
            oracle.grant(APP, user)
        crowd = FlashCrowdWorkload(
            system, APP, list(population), oracle,
            start=10.0, accesses_per_user=4, think_time=1.0,
        )
        system.run(until=60.0)
        assert crowd.done.triggered
        assert len(crowd.observations) == 20 * 4
        assert all(obs.decision.allowed for obs in crowd.observations)
        # First access per user misses; the rest hit the warm cache.
        misses = sum(
            1 for obs in crowd.observations
            if obs.decision.reason == "verified"
        )
        hits = sum(
            1 for obs in crowd.observations
            if obs.decision.reason == "cache"
        )
        assert misses == 20
        assert hits == 60

    def test_no_accesses_before_start(self):
        from repro.workloads.generators import FlashCrowdWorkload

        system = small_system(seed=43)
        population = UserPopulation(3)
        oracle = AuthorizationOracle(60.0)
        for user in population:
            system.seed_grant(APP, user)
            oracle.grant(APP, user)
        crowd = FlashCrowdWorkload(
            system, APP, list(population), oracle, start=50.0,
        )
        system.run(until=40.0)
        assert crowd.observations == []
        system.run(until=100.0)
        assert crowd.done.triggered

    def test_invalid_params(self):
        from repro.workloads.generators import FlashCrowdWorkload

        system = small_system(seed=44)
        with pytest.raises(ValueError):
            FlashCrowdWorkload(
                system, APP, ["u"], AuthorizationOracle(60.0),
                start=0.0, accesses_per_user=0,
            )


class TestAuthorizedCount:
    def test_counts_track_grant_revoke(self):
        oracle = AuthorizationOracle(60.0)
        assert oracle.authorized_count(APP) == 0
        oracle.grant(APP, "a")
        oracle.grant(APP, "b")
        oracle.grant(APP, "a")  # idempotent
        assert oracle.authorized_count(APP) == 2
        oracle.revoke(APP, "a", time=1.0)
        oracle.revoke(APP, "a", time=2.0)  # idempotent
        assert oracle.authorized_count(APP) == 1
        assert oracle.authorized_count("other") == 0

    def test_update_workload_never_scans_population(self):
        """The O(1) counter keeps update cost independent of n_users."""
        system = small_system()
        population = UserPopulation(100_000)

        class CountingOracle(AuthorizationOracle):
            calls = 0

            def is_authorized(self, application, user):
                CountingOracle.calls += 1
                return super().is_authorized(application, user)

        oracle = CountingOracle(60.0)
        UpdateWorkload(
            system, APP, population, oracle, rate=1.0,
            rng=system.streams.stream("u"),
        )
        system.run(until=60.0)
        # One membership probe per issued update, not one per user.
        assert 0 < CountingOracle.calls < 1000

    def test_fallback_scan_for_counterless_oracles(self):
        system = small_system()
        population = UserPopulation(10)

        class BareOracle:
            """Duck-typed oracle without authorized_count."""

            def __init__(self):
                self.granted = set()

            def is_authorized(self, application, user):
                return user in self.granted

            def grant(self, application, user):
                self.granted.add(user)

            def revoke(self, application, user, time):
                self.granted.discard(user)

        oracle = BareOracle()
        workload = UpdateWorkload(
            system, APP, population, oracle, rate=1.0,
            rng=system.streams.stream("u"),
        )
        system.run(until=30.0)
        assert workload.adds > 0


class TestDiurnalAccessWorkload:
    def test_flat_float_path_draw_identical(self):
        """Passing a float must replay the exact historical stream."""
        def run_once():
            system = small_system(seed=9)
            population = UserPopulation(10)
            oracle = AuthorizationOracle(60.0)
            for user in population.head(5):
                system.seed_grant(APP, user)
                oracle.grant(APP, user)
            workload = AccessWorkload(
                system, APP, population, oracle, rate=5.0,
                rng=system.streams.stream("w"),
            )
            system.run(until=30.0)
            return [(o.time, o.user) for o in workload.observations]

        assert run_once() == run_once()

    def test_diurnal_profile_shapes_traffic(self):
        from repro.workloads.population import DiurnalRate

        system = small_system(seed=10)
        population = UserPopulation(5)
        oracle = AuthorizationOracle(60.0)
        for user in population:
            system.seed_grant(APP, user)
            oracle.grant(APP, user)
        profile = DiurnalRate(base=20.0, amplitude=0.9, period=200.0)
        workload = AccessWorkload(
            system, APP, population, oracle, rate=profile,
            rng=system.streams.stream("w"),
        )
        system.run(until=200.0)
        # Peak quarter-cycle is centred on t=50, trough on t=150.
        peak = sum(1 for o in workload.observations if 25 <= o.time < 75)
        trough = sum(1 for o in workload.observations if 125 <= o.time < 175)
        assert peak > 3 * trough
        assert workload.attempts > 0

    def test_diurnal_rate_validated_via_dataclass(self):
        from repro.workloads.population import DiurnalRate

        system = small_system(seed=11)
        profile = DiurnalRate(base=1.0, amplitude=0.0)
        workload = AccessWorkload(
            system, APP, UserPopulation(3), AuthorizationOracle(60.0),
            rate=profile, rng=system.streams.stream("w"),
        )
        assert workload.rate is profile
