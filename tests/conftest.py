"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Environment
from repro.sim.network import FixedLatency, Network
from repro.sim.partitions import ScriptedConnectivity
from repro.sim.trace import Tracer


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def tracer(env) -> Tracer:
    return Tracer(env, keep_log=True)


@pytest.fixture
def connectivity() -> ScriptedConnectivity:
    return ScriptedConnectivity()


@pytest.fixture
def network(env, tracer, connectivity) -> Network:
    """Deterministic network: scripted links, fixed 50 ms latency.

    This is the sim implementation of :class:`repro.net.transport.
    Transport`; the socket backend is covered in ``tests/test_net``.
    """
    return Network(
        env,
        connectivity=connectivity,
        latency=FixedLatency(0.05),
        tracer=tracer,
    )
