"""Docs/code consistency checks.

DESIGN.md promises an experiment index and bench targets; EXPERIMENTS.md
records ids; README names example scripts.  These tests keep the
documentation honest as the code moves.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.experiments import EXPERIMENTS

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDoc:
    def test_every_experiment_id_documented(self):
        design = read("DESIGN.md")
        for experiment_id in EXPERIMENTS:
            assert f"`{experiment_id}`" in design, experiment_id

    def test_every_bench_target_exists(self):
        design = read("DESIGN.md")
        for target in re.findall(r"`(benchmarks/bench_\w+\.py)`", design):
            assert (ROOT / target).exists(), target

    def test_confirms_paper_identity(self):
        design = read("DESIGN.md")
        assert "Hiltunen" in design and "ICDCS" in design
        assert "not a title collision" in design


class TestExperimentsDoc:
    def test_every_experiment_id_recorded(self):
        experiments = read("EXPERIMENTS.md")
        for experiment_id in EXPERIMENTS:
            assert f"`{experiment_id}`" in experiments, experiment_id

    def test_paper_values_quoted_correctly(self):
        """The doc quotes paper numbers; spot-check them against the
        actual analysis."""
        from repro.analysis import availability, security

        experiments = read("EXPERIMENTS.md")
        assert "0.38742" in experiments
        assert f"{security(10, 1, 0.1):.5f}" == "0.38742"
        assert "0.10737" in experiments
        assert f"{availability(10, 10, 0.2):.5f}" == "0.10737"


class TestReadme:
    def test_example_scripts_exist(self):
        readme = read("README.md")
        for script in re.findall(r"`(\w+\.py)`", readme):
            if script in ("setup.py",):
                continue
            assert (ROOT / "examples" / script).exists(), script

    def test_experiment_ids_mentioned_are_real(self):
        readme = read("README.md")
        for match in re.findall(r"`([a-z_0-9]+)`", readme):
            if match in EXPERIMENTS:
                continue  # real id, fine
        # and the core ones must be present
        for required in ("table1", "figure5", "sim_table1", "baselines"):
            assert f"`{required}`" in readme, required

    def test_architecture_tree_paths_exist(self):
        readme = read("README.md")
        for module in re.findall(r"([a-z_]+\.py)\s{2,}", readme):
            hits = list((ROOT / "src").rglob(module))
            assert hits, f"README references missing module {module}"


class TestProtocolDoc:
    def test_referenced_tests_exist(self):
        protocol = read("docs/PROTOCOL.md")
        match = re.search(r"tests/[\w/]+\.py", protocol)
        assert match is not None
        assert (ROOT / match.group(0)).exists()

    def test_referenced_source_files_exist(self):
        protocol = read("docs/PROTOCOL.md")
        for ref in re.findall(r"`(core/\w+\.py|sim/\w+\.py)`", protocol):
            assert (ROOT / "src" / "repro" / ref).exists(), ref
