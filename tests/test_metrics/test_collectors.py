"""Tests for the metric collectors and reports."""

from __future__ import annotations

import random

import pytest

from repro.core.host import AccessDecision, DecisionReason
from repro.core.rights import Right
from repro.metrics.collectors import (
    MessageCountCollector,
    QuorumLatencyCollector,
    availability_report,
    latency_by_reason,
    overhead_report,
    security_report,
)
from repro.sim.trace import TraceKind, Tracer
from repro.workloads.generators import AuthorizationOracle, ObservedDecision

APP = "app"


def observed(user, allowed, authorized, time=0.0, latency=0.1,
             reason=DecisionReason.VERIFIED):
    return ObservedDecision(
        time=time,
        host="h0",
        user=user,
        application=APP,
        decision=AccessDecision(
            application=APP,
            user=user,
            right=Right.USE,
            allowed=allowed,
            reason=reason if allowed or reason != DecisionReason.VERIFIED
            else DecisionReason.DENIED,
            attempts=1,
            responses=2,
            latency=latency,
        ),
        authorized=authorized,
    )


class TestAvailabilityReport:
    def test_counts_authorized_only(self):
        report = availability_report(
            [
                observed("a", allowed=True, authorized=True),
                observed("b", allowed=False, authorized=True),
                observed("c", allowed=False, authorized=False),
            ]
        )
        assert report.authorized_attempts == 2
        assert report.authorized_allowed == 1
        assert report.availability == pytest.approx(0.5)

    def test_latency_bound_tightens_timeliness(self):
        observations = [
            observed("a", allowed=True, authorized=True, latency=0.1),
            observed("b", allowed=True, authorized=True, latency=5.0),
        ]
        assert availability_report(observations).availability == 1.0
        report = availability_report(observations, latency_bound=1.0)
        assert report.availability == pytest.approx(0.5)

    def test_unauthorized_allows_counted(self):
        report = availability_report(
            [observed("x", allowed=True, authorized=False,
                      reason=DecisionReason.DEFAULT_ALLOW)]
        )
        assert report.unauthorized_allowed == 1

    def test_empty_is_vacuously_available(self):
        report = availability_report([])
        assert report.availability == 1.0


class TestSecurityReport:
    def build_collector(self, env_tracer, latencies):
        collector = QuorumLatencyCollector(env_tracer)
        for latency in latencies:
            env_tracer.publish(
                TraceKind.UPDATE_QUORUM_REACHED, "m0",
                elapsed=latency, grant=False,
            )
        return collector

    def test_timely_fraction(self, env, tracer):
        collector = self.build_collector(tracer, [0.5, 2.0, 10.0])
        report = security_report(
            [], AuthorizationOracle(30.0), revocations_issued=3,
            quorum_collector=collector, timeliness_bound=5.0,
        )
        assert report.security == pytest.approx(2 / 3)
        assert report.quorums_reached == 3

    def test_grant_quorums_filtered_out(self, env, tracer):
        collector = QuorumLatencyCollector(tracer, grants=False)
        tracer.publish(TraceKind.UPDATE_QUORUM_REACHED, "m0",
                       elapsed=0.1, grant=True)
        tracer.publish(TraceKind.UPDATE_QUORUM_REACHED, "m0",
                       elapsed=0.2, grant=False)
        assert collector.reached == 1

    def test_te_violation_detection(self, env, tracer):
        oracle = AuthorizationOracle(expiry_bound=10.0)
        oracle.grant(APP, "u")
        oracle.revoke(APP, "u", time=100.0)
        observations = [
            # inside the grace window
            observed("u", allowed=True, authorized=False, time=105.0),
            # past revoke + Te: a violation
            observed("u", allowed=True, authorized=False, time=120.0),
        ]
        collector = self.build_collector(tracer, [0.1])
        report = security_report(
            observations, oracle, revocations_issued=1,
            quorum_collector=collector, timeliness_bound=5.0,
        )
        assert report.grace_window_allows == 1
        assert report.te_violations == 1

    def test_no_revocations_is_vacuously_secure(self, env, tracer):
        collector = QuorumLatencyCollector(tracer)
        report = security_report(
            [], AuthorizationOracle(10.0), revocations_issued=0,
            quorum_collector=collector, timeliness_bound=1.0,
        )
        assert report.security == 1.0


class TestOverheadReport:
    def test_classifies_control_vs_app(self, env, tracer):
        collector = MessageCountCollector(tracer)
        for kind in ("QueryRequest", "QueryResponse", "AppRequest"):
            tracer.publish(TraceKind.MSG_SENT, "n", dst="x", message_kind=kind)
        report = overhead_report(collector, duration=10.0)
        assert report.control_messages == 2
        assert report.app_messages == 1
        assert report.control_rate == pytest.approx(0.2)
        assert report.by_kind["QueryRequest"] == 1

    def test_zero_duration_rejected(self, env, tracer):
        with pytest.raises(ValueError):
            overhead_report(MessageCountCollector(tracer), duration=0.0)


class TestLatencyByReason:
    def test_buckets_by_reason(self):
        observations = [
            observed("a", allowed=True, authorized=True, latency=0.0,
                     reason=DecisionReason.CACHE),
            observed("b", allowed=True, authorized=True, latency=0.2,
                     reason=DecisionReason.VERIFIED),
            observed("c", allowed=True, authorized=True, latency=0.4,
                     reason=DecisionReason.VERIFIED),
        ]
        buckets = latency_by_reason(observations)
        assert buckets[DecisionReason.CACHE].mean == 0.0
        assert buckets[DecisionReason.VERIFIED].n == 2
        assert buckets[DecisionReason.VERIFIED].mean == pytest.approx(0.3)

    def test_empty(self):
        assert latency_by_reason([]) == {}


class TestQuorumLatencyTimely:
    """Regression for the O(n) per-call re-scan: ``timely`` now answers
    from an insort-maintained sorted mirror and must keep agreeing with
    the naive linear count for arbitrary arrival orders."""

    def _fill(self, tracer, latencies):
        collector = QuorumLatencyCollector(tracer)
        for latency in latencies:
            tracer.publish(
                TraceKind.UPDATE_QUORUM_REACHED, "m0",
                elapsed=latency, grant=False,
            )
        return collector

    def test_matches_linear_scan_for_unsorted_arrivals(self, env, tracer):
        rng = random.Random(13)
        latencies = [rng.uniform(0.0, 10.0) for _ in range(200)]
        collector = self._fill(tracer, latencies)
        for bound in (0.0, 0.5, 3.3, 5.0, 9.99, 20.0):
            assert collector.timely(bound) == sum(
                1 for latency in latencies if latency <= bound
            )

    def test_bound_is_inclusive(self, env, tracer):
        collector = self._fill(tracer, [1.0, 2.0, 2.0, 3.0])
        assert collector.timely(2.0) == 3

    def test_arrival_order_preserved_in_latencies(self, env, tracer):
        # The sorted mirror must not disturb the public arrival-order
        # list that summarize() and existing callers rely on.
        arrivals = [5.0, 1.0, 3.0]
        collector = self._fill(tracer, arrivals)
        assert collector.latencies == arrivals
        assert collector.timely(3.0) == 2

    def test_interleaved_queries_stay_consistent(self, env, tracer):
        collector = QuorumLatencyCollector(tracer)
        seen = []
        rng = random.Random(7)
        for _ in range(50):
            latency = rng.uniform(0.0, 4.0)
            tracer.publish(
                TraceKind.UPDATE_QUORUM_REACHED, "m0",
                elapsed=latency, grant=False,
            )
            seen.append(latency)
            bound = rng.uniform(0.0, 4.0)
            assert collector.timely(bound) == sum(
                1 for value in seen if value <= bound
            )
