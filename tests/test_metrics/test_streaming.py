"""Streaming mergeable accumulators: associativity, identity, exactness,
reservoir determinism, and agreement with the list-scanning reports."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.collectors import availability_report, latency_by_reason
from repro.metrics.estimators import summarize
from repro.metrics.streaming import (
    AvailabilityAccumulator,
    ExactSum,
    LatencyAccumulator,
    Mergeable,
    OverheadAccumulator,
    StalenessAccumulator,
    StreamingSummary,
)


def _filled_summary(values, seed=11, capacity=64):
    summary = StreamingSummary(seed=seed, capacity=capacity)
    for value in values:
        summary.add(value)
    return summary


class TestExactSum:
    def test_matches_fsum(self):
        values = [0.1] * 10 + [1e16, 1.0, -1e16]
        acc = ExactSum()
        for value in values:
            acc.add(value)
        assert acc.value() == math.fsum(values)

    @given(st.lists(st.floats(-1e9, 1e9), max_size=50), st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_permutation_invariant(self, values, rng):
        ordered = ExactSum()
        for value in values:
            ordered.add(value)
        shuffled = list(values)
        rng.shuffle(shuffled)
        permuted = ExactSum()
        for value in shuffled:
            permuted.add(value)
        assert ordered.value() == permuted.value()

    def test_merge_is_exact_and_non_mutating(self):
        a, b = ExactSum(), ExactSum()
        for value in (1e16, 1.0):
            a.add(value)
        b.add(-1e16)
        merged = a.merge(b)
        assert merged.value() == 1.0
        assert a.value() == 1e16 + 1.0 and b.value() == -1e16

    def test_identity(self):
        a = ExactSum()
        a.add(3.5)
        assert a.merge(ExactSum()).value() == 3.5
        assert ExactSum().merge(a).value() == 3.5


class TestStreamingSummary:
    def test_satisfies_mergeable_protocol(self):
        assert isinstance(StreamingSummary(), Mergeable)
        assert isinstance(AvailabilityAccumulator(), Mergeable)
        assert isinstance(StalenessAccumulator(), Mergeable)
        assert isinstance(OverheadAccumulator(), Mergeable)
        assert isinstance(LatencyAccumulator(), Mergeable)

    def test_exact_below_capacity(self):
        rng = random.Random(5)
        values = [rng.uniform(0, 100) for _ in range(300)]
        got = _filled_summary(values, capacity=1024).summary()
        ref = summarize(values)
        assert got.n == ref.n
        assert got.p50 == ref.p50 and got.p95 == ref.p95 and got.p99 == ref.p99
        assert got.minimum == ref.minimum and got.maximum == ref.maximum
        assert got.mean == pytest.approx(ref.mean, rel=1e-12)

    def test_empty_summary_is_none(self):
        assert StreamingSummary().summary() is None

    def test_exact_fields_survive_reservoir_overflow(self):
        rng = random.Random(6)
        values = [rng.uniform(0, 100) for _ in range(500)]
        summary = _filled_summary(values, capacity=32)
        got = summary.summary()
        assert got.n == 500
        assert got.minimum == min(values) and got.maximum == max(values)
        assert got.mean == pytest.approx(math.fsum(values) / 500, rel=1e-12)
        assert len(summary._entries) <= 32

    def test_reservoir_seed_determinism(self):
        rng = random.Random(7)
        values = [rng.uniform(0, 1) for _ in range(200)]
        first = _filled_summary(values, seed=3, capacity=16)
        second = _filled_summary(values, seed=3, capacity=16)
        assert first == second
        assert first.summary() == second.summary()
        different = _filled_summary(values, seed=4, capacity=16)
        assert different.summary().p50 != first.summary().p50

    @given(
        st.lists(st.floats(0, 1e6), min_size=1, max_size=120),
        st.integers(0, 2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_associative(self, values, seed):
        thirds = [values[0::3], values[1::3], values[2::3]]
        parts = [
            _filled_summary(chunk, seed=seed + i, capacity=16)
            for i, chunk in enumerate(thirds)
        ]
        a, b, c = parts
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right
        assert left.summary() == right.summary()

    def test_merge_identity(self):
        filled = _filled_summary([1.0, 2.0, 9.0])
        identity = StreamingSummary(seed=99, capacity=64)
        assert filled.merge(identity).summary() == filled.summary()
        assert identity.merge(filled).n == filled.n

    def test_merge_equals_sequential_feed(self):
        # Splitting a stream across two accumulators and merging gives
        # the same observable state as one accumulator fed everything,
        # when both use the same seed (the in-worker-reduce shape).
        rng = random.Random(8)
        values = [rng.uniform(0, 10) for _ in range(40)]
        whole = _filled_summary(values, seed=1, capacity=1024)
        left = _filled_summary(values[:25], seed=1, capacity=1024)
        right = _filled_summary(values[25:], seed=2, capacity=1024)
        merged = left.merge(right)
        assert merged.summary().n == whole.summary().n
        assert merged.summary().minimum == whole.summary().minimum
        assert merged.summary().mean == pytest.approx(whole.summary().mean)

    def test_merge_capacity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StreamingSummary(capacity=8).merge(StreamingSummary(capacity=16))

    def test_merge_does_not_mutate_operands(self):
        a = _filled_summary([1.0, 2.0])
        b = _filled_summary([3.0])
        before_a, before_b = a.summary(), b.summary()
        a.merge(b)
        assert a.summary() == before_a and b.summary() == before_b


def _observe_all(accumulator, observations):
    for observed in observations:
        accumulator.observe(
            observed.authorized,
            observed.decision.allowed,
            observed.decision.latency,
        )
    return accumulator


class _FakeDecision:
    def __init__(self, allowed, latency):
        self.allowed = allowed
        self.latency = latency


class _FakeObserved:
    def __init__(self, authorized, allowed, latency):
        self.authorized = authorized
        self.decision = _FakeDecision(allowed, latency)


class TestAvailabilityAccumulator:
    def _sample(self, seed=0, n=60):
        rng = random.Random(seed)
        return [
            _FakeObserved(rng.random() < 0.8, rng.random() < 0.7, rng.uniform(0, 2))
            for _ in range(n)
        ]

    @pytest.mark.parametrize("bound", [None, 1.0])
    def test_matches_list_scan(self, bound):
        observations = self._sample()
        streamed = _observe_all(AvailabilityAccumulator(bound), observations)
        assert streamed.report() == availability_report(observations, bound)

    def test_merge_matches_whole(self):
        observations = self._sample(seed=2, n=80)
        whole = _observe_all(AvailabilityAccumulator(), observations)
        left = _observe_all(AvailabilityAccumulator(), observations[:30])
        right = _observe_all(AvailabilityAccumulator(), observations[30:])
        assert left.merge(right) == whole
        assert left.merge(right).report() == whole.report()

    def test_merge_bound_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityAccumulator(1.0).merge(AvailabilityAccumulator(2.0))


class _FakeOracle:
    """Violation iff past t=100; grace iff within (90, 100]."""

    def violation(self, application, user, time):
        return time > 100.0

    def in_grace(self, application, user, time):
        return 90.0 < time <= 100.0


class TestStalenessAccumulator:
    def test_finalize_classifies_like_security_report_loop(self):
        acc = StalenessAccumulator()
        # (time, latency, allowed, authorized)
        acc.observe("app", "u1", 95.0, 0.0, True, False)   # grace
        acc.observe("app", "u2", 100.0, 5.0, True, False)  # violation
        acc.observe("app", "u3", 10.0, 0.0, True, False)   # neither
        acc.observe("app", "u4", 99.0, 0.0, False, False)  # denied: ignored
        acc.observe("app", "u5", 99.0, 0.0, True, True)    # authorized: ignored
        assert acc.finalize(_FakeOracle()) == (1, 1)

    def test_merge(self):
        a, b = StalenessAccumulator(), StalenessAccumulator()
        a.observe("app", "u1", 95.0, 0.0, True, False)
        b.observe("app", "u2", 101.0, 0.0, True, False)
        assert a.merge(b).finalize(_FakeOracle()) == (1, 1)


class TestOverheadAccumulator:
    def test_merge_sums_kinds(self):
        a, b = OverheadAccumulator(), OverheadAccumulator()
        for _ in range(3):
            a.observe("QueryRequest")
        b.observe("QueryRequest")
        b.observe("AppPayload")
        merged = a.merge(b)
        assert merged.by_kind == {"QueryRequest": 4, "AppPayload": 1}
        report = merged.report(duration=2.0)
        assert report.control_messages == 4 and report.app_messages == 1
        assert report.control_rate == 2.0


class TestLatencyAccumulator:
    def test_matches_latency_by_reason_below_capacity(self):
        rng = random.Random(9)

        class _Obs:
            def __init__(self, reason, latency):
                self.decision = type(
                    "D", (), {"reason": reason, "latency": latency}
                )()

        observations = [
            _Obs(rng.choice(["cache", "verified"]), rng.uniform(0, 1))
            for _ in range(100)
        ]
        acc = LatencyAccumulator(seed=1, capacity=1024)
        for observed in observations:
            acc.observe(observed.decision.reason, observed.decision.latency)
        ref = latency_by_reason(observations)
        got = acc.summaries()
        assert set(got) == set(ref)
        for reason in ref:
            assert got[reason].n == ref[reason].n
            assert got[reason].p50 == ref[reason].p50
            assert got[reason].minimum == ref[reason].minimum

    def test_merge_unions_buckets(self):
        a = LatencyAccumulator(seed=1)
        b = LatencyAccumulator(seed=1)
        a.observe("cache", 0.1)
        b.observe("verified", 0.9)
        b.observe("cache", 0.2)
        merged = a.merge(b)
        summaries = merged.summaries()
        assert summaries["cache"].n == 2 and summaries["verified"].n == 1
