"""Tests for the windowed availability timeline."""

from __future__ import annotations

import pytest

from repro.core.host import AccessDecision, DecisionReason
from repro.core.policy import AccessPolicy, ExhaustedAction
from repro.core.rights import Right
from repro.core.system import AccessControlSystem
from repro.metrics.timeline import availability_timeline, sparkline
from repro.sim.network import FixedLatency
from repro.sim.partitions import ScriptedConnectivity
from repro.workloads.generators import AccessWorkload, AuthorizationOracle, ObservedDecision
from repro.workloads.population import UserPopulation

APP = "app"


def observed(time, allowed, authorized=True):
    return ObservedDecision(
        time=time,
        host="h0",
        user="u",
        application=APP,
        decision=AccessDecision(
            application=APP, user="u", right=Right.USE,
            allowed=allowed,
            reason=DecisionReason.VERIFIED if allowed else DecisionReason.DENIED,
            attempts=1, responses=1, latency=0.1,
        ),
        authorized=authorized,
    )


class TestTimelineBuckets:
    def test_bucketing(self):
        points = availability_timeline(
            [observed(1.0, True), observed(2.0, False), observed(11.0, True)],
            window=10.0,
        )
        assert len(points) == 2
        assert points[0].attempts == 2 and points[0].allowed == 1
        assert points[0].availability == pytest.approx(0.5)
        assert points[1].availability == 1.0

    def test_empty_window_is_none(self):
        points = availability_timeline(
            [observed(1.0, True)], window=10.0, end_time=30.0
        )
        assert points[0].availability == 1.0
        assert points[1].availability is None
        assert points[2].availability is None

    def test_unauthorized_attempts_excluded(self):
        points = availability_timeline(
            [observed(1.0, True, authorized=False)], window=10.0, end_time=10.0
        )
        assert points[0].attempts == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            availability_timeline([], window=0.0)

    def test_empty_input(self):
        assert availability_timeline([], window=5.0) == []

    def test_sparkline_shapes(self):
        points = availability_timeline(
            [observed(1.0, True), observed(11.0, False)],
            window=10.0, end_time=30.0,
        )
        line = sparkline(points)
        assert len(line) == 3
        assert line[0] == "█" and line[1] == "_" and line[2] == "·"


class TestTimelineShowsPartitionDip:
    def test_dip_during_partition(self):
        connectivity = ScriptedConnectivity()
        policy = AccessPolicy(
            check_quorum=2, expiry_bound=5.0, max_attempts=1,
            exhausted_action=ExhaustedAction.DENY, query_timeout=1.0,
            cache_cleanup_interval=None,
        )
        system = AccessControlSystem(
            n_managers=3, n_hosts=1, policy=policy,
            connectivity=connectivity, latency=FixedLatency(0.02),
            clock_drift=False, seed=1,
        )
        population = UserPopulation(5)
        oracle = AuthorizationOracle(5.0)
        for user in population:
            system.seed_grant(APP, user)
            oracle.grant(APP, user)
        workload = AccessWorkload(
            system, APP, population, oracle, rate=5.0,
            rng=system.streams.stream("w"),
        )

        def script():
            yield system.env.timeout(100.0)
            connectivity.isolate("h0", system.manager_addrs)
            yield system.env.timeout(100.0)
            connectivity.reconnect("h0", system.manager_addrs)

        system.env.process(script(), name="script")
        system.run(until=300.0)
        points = availability_timeline(
            workload.observations, window=50.0, end_time=300.0
        )
        # Windows: [0,50) fine, [100,150)+[150,200) partitioned, [250,300) fine.
        assert points[0].availability > 0.95
        assert points[3].availability < 0.3  # mid-partition, cache expired
        assert points[5].availability > 0.95
