"""Tests for statistical helpers."""

from __future__ import annotations

import pytest

from repro.metrics.estimators import percentile, summarize, wilson_interval


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummarize:
    def test_empty_returns_none(self):
        assert summarize([]) is None

    def test_fields(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.n == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.p50 == pytest.approx(2.5)

    def test_accepts_generator(self):
        stats = summarize(float(x) for x in range(10))
        assert stats.n == 10


class TestWilson:
    def test_all_successes_upper_is_one(self):
        low, high = wilson_interval(100, 100)
        assert high == pytest.approx(1.0, abs=1e-9)
        assert low > 0.95

    def test_zero_successes(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0
        assert high < 0.05

    def test_interval_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_more_trials_narrower(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)
