"""Property-based tests (hypothesis) on the core data structures and
the analysis invariants."""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.analysis.heterogeneous import poisson_binomial_tail, weighted_average
from repro.analysis.quorum_math import availability, binomial_tail, security
from repro.auth.signatures import canonical_bytes, message_digest
from repro.core.acl import AccessControlList
from repro.core.cache import ACLCache, CacheEntry
from repro.core.rights import AclEntry, Right, Version
from repro.metrics.estimators import percentile, wilson_interval
from repro.sim.rng import derive_seed

# ---------------------------------------------------------------- strategies

users = st.text(alphabet="abcdef", min_size=1, max_size=3)
origins = st.sampled_from(["m0", "m1", "m2", "m3"])
rights = st.sampled_from([Right.USE, Right.MANAGE])


@st.composite
def acl_entries(draw):
    """Entries whose content is a function of (user, right, version).

    In the protocol a version names exactly one operation, so two
    entries with equal key and version always carry the same payload;
    the generator enforces that, otherwise "convergence" is undefined.
    """
    counter = draw(st.integers(1, 20))
    origin = draw(origins)
    return AclEntry(
        user=draw(users),
        right=draw(rights),
        granted=(counter + len(origin) + int(origin[-1])) % 2 == 0,
        version=Version(counter, origin),
    )


entry_lists = st.lists(acl_entries(), max_size=30)


def acl_state(acl: AccessControlList):
    return {
        (e.user, e.right): (e.granted, e.version) for e in acl.snapshot()
    }


# ------------------------------------------------------------------ ACL CRDT


class TestAclMergeProperties:
    @given(entry_lists)
    def test_merge_order_independent(self, entries):
        """LWW merge must converge regardless of delivery order."""
        forward = AccessControlList("a")
        backward = AccessControlList("a")
        forward.merge(entries)
        backward.merge(list(reversed(entries)))
        assert acl_state(forward) == acl_state(backward)

    @given(entry_lists, st.randoms(use_true_random=False))
    def test_merge_shuffle_invariant(self, entries, rng):
        shuffled = list(entries)
        rng.shuffle(shuffled)
        a = AccessControlList("a")
        b = AccessControlList("a")
        a.merge(entries)
        b.merge(shuffled)
        assert acl_state(a) == acl_state(b)

    @given(entry_lists)
    def test_merge_idempotent(self, entries):
        once = AccessControlList("a")
        once.merge(entries)
        twice = AccessControlList("a")
        twice.merge(entries)
        twice.merge(entries)
        assert acl_state(once) == acl_state(twice)

    @given(entry_lists, entry_lists)
    def test_merge_commutative_across_batches(self, xs, ys):
        ab = AccessControlList("a")
        ab.merge(xs)
        ab.merge(ys)
        ba = AccessControlList("a")
        ba.merge(ys)
        ba.merge(xs)
        assert acl_state(ab) == acl_state(ba)

    @given(entry_lists)
    def test_stored_entry_is_max_version(self, entries):
        acl = AccessControlList("a")
        acl.merge(entries)
        for (user, right), (granted, version) in acl_state(acl).items():
            candidates = [
                e for e in entries if e.user == user and e.right == right
            ]
            best = max(candidates, key=lambda e: e.version)
            assert version == best.version
            assert granted == best.granted

    @given(entry_lists)
    def test_snapshot_transfer_preserves_state(self, entries):
        source = AccessControlList("a")
        source.merge(entries)
        replica = AccessControlList("a")
        replica.merge(source.snapshot())
        assert acl_state(replica) == acl_state(source)


# ------------------------------------------------------------------ versions


class TestVersionProperties:
    @given(st.integers(0, 100), origins, st.integers(0, 100), origins)
    def test_total_order_trichotomy(self, c1, o1, c2, o2):
        a, b = Version(c1, o1), Version(c2, o2)
        assert (a < b) + (b < a) + (a == b) == 1

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), origins), min_size=2, max_size=10
        )
    )
    def test_sorting_consistent_with_pairwise(self, pairs):
        versions = [Version(c, o) for c, o in pairs]
        ordered = sorted(versions)
        for a, b in zip(ordered, ordered[1:]):
            assert not b < a


# ------------------------------------------------------------------- cache


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(users, st.floats(0, 1000, allow_nan=False)), max_size=20
        ),
        st.floats(0, 1000, allow_nan=False),
    )
    def test_lookup_never_returns_expired(self, stores, now):
        cache = ACLCache("a")
        for user, limit in stores:
            cache.store(
                CacheEntry(user=user, right=Right.USE, limit=limit,
                           version=Version(1, "m"))
            )
        for user, _limit in stores:
            result = cache.lookup(user, Right.USE, now)
            if result.hit:
                assert now < result.entry.limit

    @given(st.lists(users, max_size=20), st.floats(0, 100, allow_nan=False))
    def test_flush_then_lookup_misses(self, user_list, now):
        cache = ACLCache("a")
        for user in user_list:
            cache.store(
                CacheEntry(user=user, right=Right.USE, limit=1e9,
                           version=Version(1, "m"))
            )
        for user in user_list:
            cache.flush(user)
            assert not cache.lookup(user, Right.USE, now).hit

    @given(
        st.lists(
            st.tuples(users, st.floats(0, 1000, allow_nan=False)), max_size=20
        ),
        st.floats(0, 1000, allow_nan=False),
    )
    def test_purge_equivalent_to_lazy_expiry(self, stores, now):
        eager = ACLCache("a")
        lazy = ACLCache("a")
        for user, limit in stores:
            entry = CacheEntry(user=user, right=Right.USE, limit=limit,
                               version=Version(1, "m"))
            eager.store(entry)
            lazy.store(entry)
        eager.purge_expired(now)
        for user, _ in stores:
            assert (
                eager.lookup(user, Right.USE, now).hit
                == lazy.lookup(user, Right.USE, now).hit
            )


# ------------------------------------------------------------------ analysis


class TestAnalysisProperties:
    @given(st.integers(0, 20), st.integers(-2, 25),
           st.floats(0, 1, allow_nan=False))
    def test_binomial_tail_in_unit_interval(self, n, k, p):
        assert 0.0 <= binomial_tail(n, k, p) <= 1.0

    @given(st.integers(1, 15), st.floats(0, 0.9, allow_nan=False))
    def test_tail_monotone_in_k(self, n, p):
        values = [binomial_tail(n, k, p) for k in range(n + 2)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @given(st.integers(1, 12), st.floats(0.01, 0.5, allow_nan=False))
    def test_pa_ps_tradeoff_monotone_in_c(self, m, pi):
        pas = [availability(m, c, pi) for c in range(1, m + 1)]
        pss = [security(m, c, pi) for c in range(1, m + 1)]
        assert all(a >= b - 1e-12 for a, b in zip(pas, pas[1:]))
        assert all(a <= b + 1e-12 for a, b in zip(pss, pss[1:]))

    @given(
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=12),
        st.integers(0, 13),
    )
    def test_poisson_binomial_in_unit_interval(self, probs, k):
        assert 0.0 <= poisson_binomial_tail(probs, k) <= 1.0

    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=10))
    def test_poisson_binomial_total_mass(self, probs):
        """Tail at 0 is 1; tails telescope down to P[all]."""
        n = len(probs)
        assert poisson_binomial_tail(probs, 0) == 1.0
        all_succeed = math.prod(probs)
        assert poisson_binomial_tail(probs, n) == (
            math.isclose(all_succeed, poisson_binomial_tail(probs, n), abs_tol=1e-9)
            and poisson_binomial_tail(probs, n)
        )

    @given(st.integers(1, 10), st.floats(0.05, 0.95, allow_nan=False))
    def test_uniform_poisson_binomial_equals_binomial(self, n, p):
        for k in range(n + 1):
            assert math.isclose(
                poisson_binomial_tail([p] * n, k),
                binomial_tail(n, k, p),
                abs_tol=1e-9,
            )


# ------------------------------------------------------------------ metrics


class TestEstimatorProperties:
    @given(st.integers(0, 500), st.integers(0, 500))
    def test_wilson_contains_point_estimate(self, successes, extra):
        trials = successes + extra
        if trials == 0:
            return
        low, high = wilson_interval(successes, trials)
        assert low - 1e-9 <= successes / trials <= high + 1e-9
        assert 0.0 <= low <= high <= 1.0

    @given(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50),
        st.floats(0, 100, allow_nan=False),
    )
    def test_percentile_bounded_by_extremes(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    @given(st.dictionaries(users, st.floats(0, 1, allow_nan=False), min_size=1))
    def test_weighted_average_bounded(self, values):
        mean = weighted_average(values)
        assert min(values.values()) - 1e-12 <= mean <= max(values.values()) + 1e-12


# --------------------------------------------------------------------- auth


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-1000, 1000)
    | st.text(max_size=8),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=4), children, max_size=4),
    max_leaves=12,
)


class TestWeightedQuorumProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=7,
        ),
        st.integers(0, 30),
    )
    def test_weight_tail_matches_enumeration(self, pairs, threshold):
        """Exact DP agrees with brute-force subset enumeration."""
        from itertools import product as iproduct

        from repro.analysis.weighted import weight_tail

        weights = [w for w, _p in pairs]
        probs = [p for _w, p in pairs]
        expected = 0.0
        for outcome in iproduct((0, 1), repeat=len(pairs)):
            weight = sum(w for w, bit in zip(weights, outcome) if bit)
            if weight >= threshold:
                probability = 1.0
                for bit, p in zip(outcome, probs):
                    probability *= p if bit else (1.0 - p)
                expected += probability
        assert abs(
            weight_tail(weights, probs, threshold) - min(1.0, expected)
        ) < 1e-9

    @given(
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=8),
        st.integers(0, 9),
    )
    def test_unit_weight_tail_is_poisson_binomial(self, probs, k):
        from repro.analysis.weighted import weight_tail

        assert abs(
            weight_tail([1] * len(probs), probs, k)
            - poisson_binomial_tail(probs, k)
        ) < 1e-9


class TestStableStoreProperties:
    @given(
        st.dictionaries(
            st.text(max_size=6),
            st.recursive(
                st.integers() | st.text(max_size=5),
                lambda c: st.lists(c, max_size=3),
                max_leaves=6,
            ),
            max_size=10,
        )
    )
    def test_roundtrip(self, mapping):
        from repro.sim.storage import StableStore

        store = StableStore()
        for key, value in mapping.items():
            store.write(key, value)
        for key, value in mapping.items():
            assert store.read(key) == value
        assert set(store.keys()) == set(mapping)

    @given(st.lists(st.text(max_size=4), max_size=10))
    def test_mutating_written_lists_never_leaks(self, items):
        from repro.sim.storage import StableStore

        store = StableStore()
        live = list(items)
        store.write("k", live)
        live.append("tamper")
        assert store.read("k") == items


class TestCanonicalProperties:
    @given(json_like)
    def test_digest_deterministic(self, payload):
        assert message_digest(payload) == message_digest(payload)

    @given(st.dictionaries(st.text(max_size=4), st.integers(), max_size=6))
    def test_dict_insertion_order_irrelevant(self, mapping):
        items = list(mapping.items())
        reordered = dict(reversed(items))
        assert canonical_bytes(mapping) == canonical_bytes(reordered)

    @given(st.integers(0, 2**32), st.text(max_size=10))
    def test_derive_seed_range(self, master, name):
        assert 0 <= derive_seed(master, name) < 2**64
