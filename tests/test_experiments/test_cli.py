"""CLI surface: subcommand dispatch and the ``--profile`` flag."""

from __future__ import annotations

import pstats

from repro.experiments.cli import main


class TestProfileFlag:
    def test_experiments_profile_writes_prof(self, tmp_path, capsys):
        rc = main(["table1", "--profile", "--out", str(tmp_path)])
        assert rc == 0
        prof = tmp_path / "repro-experiments.prof"
        assert prof.exists()
        stats = pstats.Stats(str(prof))
        assert stats.total_calls > 0
        assert f"profile written to {prof}" in capsys.readouterr().out

    def test_fuzz_profile_writes_prof(self, tmp_path):
        rc = main(
            ["fuzz", "--cells", "1", "--profile", "--out", str(tmp_path)]
        )
        assert rc == 0
        prof = tmp_path / "repro-fuzz.prof"
        assert prof.exists()
        assert pstats.Stats(str(prof)).total_calls > 0

    def test_no_profile_leaves_no_dump(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["table1"])
        assert rc == 0
        assert not (tmp_path / "repro-experiments.prof").exists()


class TestBenchDispatch:
    def test_bench_subcommand_runs_and_profiles(self, tmp_path, capsys):
        rc = main(
            [
                "bench",
                "cache_hit_checks",
                "--quick",
                "--repeats",
                "1",
                "--profile",
                "--out",
                str(tmp_path),
                "--baseline",
                str(tmp_path / "missing-baseline.json"),
            ]
        )
        assert rc == 0
        assert (tmp_path / "repro-bench.prof").exists()
        assert (tmp_path / "BENCH_1.json").exists()
        out = capsys.readouterr().out
        assert "cache_hit_checks" in out
        assert "no baseline" in out

    def test_bench_list(self, capsys):
        rc = main(["bench", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "msg_send_deliver" in out
