"""Unit tests for the ``repro bench`` gate machinery.

Benchmark *timings* are machine-dependent, so these tests exercise the
deterministic plumbing — document schema, baseline loading for both
supported formats, regression verdicts, and trajectory numbering —
plus one tiny quick run to prove the suite executes end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench import (
    BENCH_SCHEMA,
    BENCHMARKS,
    compare_results,
    load_medians,
    main,
    next_trajectory_path,
    run_suite,
)


class TestRunSuite:
    def test_quick_run_produces_schema_document(self):
        document = run_suite(quick=True, repeats=1, names=["reachable"])
        assert document["schema"] == BENCH_SCHEMA
        assert document["quick"] is True
        entry = document["benchmarks"]["reachable"]
        assert entry["best"] <= entry["median"]
        assert len(entry["samples"]) == 1
        assert entry["size"] == BENCHMARKS["reachable"][2]
        # median/best are per-op: total elapsed divided by workload size.
        assert entry["median"] == entry["samples"][0] / entry["size"]
        assert entry["meta"]["queries"] > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmarks"):
            run_suite(quick=True, repeats=1, names=["nope"])

    def test_nonpositive_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_suite(quick=True, repeats=0)

    def test_every_benchmark_has_quick_and_full_sizes(self):
        for name, (fn, full_size, quick_size) in BENCHMARKS.items():
            assert 0 < quick_size < full_size, name


class TestLoadMedians:
    def test_repro_bench_format_prefers_best(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "benchmarks": {
                        "a": {"median": 2.0, "best": 1.5, "samples": [2.0, 1.5]},
                        "b": {"median": 3.0},
                    },
                }
            )
        )
        assert load_medians(str(path)) == {"a": 1.5, "b": 3.0}

    def test_pytest_benchmark_format(self, tmp_path):
        path = tmp_path / "pytest.json"
        path.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {"name": "x", "stats": {"median": 0.25}},
                    ]
                }
            )
        )
        assert load_medians(str(path)) == {"x": 0.25}


class TestCompareResults:
    def test_verdicts_and_regression_list(self):
        baseline = {"fast": 1.0, "slow": 1.0, "steady": 1.0, "gone": 1.0}
        current = {"fast": 0.5, "slow": 1.5, "steady": 1.05, "new": 9.9}
        lines, comparison = compare_results(baseline, current, threshold=0.10)
        assert comparison["_regressions"] == ["slow"]
        assert comparison["slow"]["regressed"] is True
        assert comparison["fast"]["regressed"] is False
        assert comparison["steady"]["regressed"] is False
        text = "\n".join(lines)
        assert "REGRESSION" in text
        assert "improved (50% faster)" in text
        assert "missing from current run" in text
        assert "new benchmark" in text

    def test_exactly_at_threshold_passes(self):
        _, comparison = compare_results({"a": 1.0}, {"a": 1.10}, threshold=0.10)
        assert comparison["_regressions"] == []


class TestTrajectoryNumbering:
    def test_first_free_slot(self, tmp_path):
        assert next_trajectory_path(str(tmp_path)).endswith("BENCH_1.json")
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_2.json").write_text("{}")
        assert next_trajectory_path(str(tmp_path)).endswith("BENCH_3.json")


class TestMainGate:
    def _write_baseline(self, path, benchmarks):
        path.write_text(
            json.dumps({"schema": BENCH_SCHEMA, "benchmarks": benchmarks})
        )

    def test_regression_fails_gate(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        # An absurdly fast baseline forces a REGRESSION verdict.
        self._write_baseline(
            baseline, {"reachable": {"median": 1e-9, "best": 1e-9}}
        )
        rc = main(
            [
                "reachable",
                "--quick",
                "--repeats",
                "1",
                "--baseline",
                str(baseline),
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
        # The trajectory artifact is still written on failure.
        artifact = json.loads((tmp_path / "BENCH_1.json").read_text())
        assert artifact["comparison"]["reachable"]["regressed"] is True

    def test_record_overwrites_baseline_and_passes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        self._write_baseline(
            baseline, {"reachable": {"median": 1e-9, "best": 1e-9}}
        )
        rc = main(
            [
                "reachable",
                "--quick",
                "--repeats",
                "1",
                "--baseline",
                str(baseline),
                "--record",
                "--no-artifact",
            ]
        )
        assert rc == 0
        recorded = json.loads(baseline.read_text())
        assert recorded["schema"] == BENCH_SCHEMA
        assert recorded["benchmarks"]["reachable"]["best"] > 0


class TestNewCells:
    def test_sweep_reduce_meta_proves_ipc_saving(self):
        document = run_suite(quick=True, repeats=1, names=["sweep_reduce"])
        meta = document["benchmarks"]["sweep_reduce"]["meta"]
        assert meta["observations"] > 0
        assert meta["bytes_reduced"] < meta["bytes_raw"]
        # The acceptance bar baked into the cell itself.
        assert meta["ipc_ratio"] >= 2.0

    def test_timer_elision_meta_counts_dead_pops(self):
        document = run_suite(quick=True, repeats=1, names=["timer_elision"])
        meta = document["benchmarks"]["timer_elision"]["meta"]
        assert meta["dead_pops"] == meta["races"] > 0


class TestRetryGate:
    def test_flagged_regression_is_remeasured_then_fails(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "benchmarks": {"reachable": {"median": 1e-9, "best": 1e-9}},
                }
            )
        )
        rc = main(
            [
                "reachable",
                "--quick",
                "--repeats",
                "1",
                "--retries",
                "2",
                "--baseline",
                str(baseline),
                "--no-artifact",
            ]
        )
        out = capsys.readouterr().out
        # An impossible baseline cannot be cleared by re-measurement:
        # both retry passes run, then the gate still fails.
        assert rc == 1
        assert "retry 1/2" in out and "retry 2/2" in out

    def test_retries_zero_skips_remeasurement(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "benchmarks": {"reachable": {"median": 1e-9, "best": 1e-9}},
                }
            )
        )
        rc = main(
            [
                "reachable",
                "--quick",
                "--repeats",
                "1",
                "--retries",
                "0",
                "--baseline",
                str(baseline),
                "--no-artifact",
            ]
        )
        assert rc == 1
        assert "retry" not in capsys.readouterr().out
