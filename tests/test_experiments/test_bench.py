"""Unit tests for the ``repro bench`` gate machinery.

Benchmark *timings* are machine-dependent, so these tests exercise the
deterministic plumbing — document schema, baseline loading for both
supported formats, regression verdicts, and trajectory numbering —
plus one tiny quick run to prove the suite executes end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench import (
    BENCH_SCHEMA,
    BENCHMARKS,
    compare_results,
    load_medians,
    main,
    next_trajectory_path,
    run_suite,
)


class TestRunSuite:
    def test_quick_run_produces_schema_document(self):
        document = run_suite(quick=True, repeats=1, names=["reachable"])
        assert document["schema"] == BENCH_SCHEMA
        assert document["quick"] is True
        entry = document["benchmarks"]["reachable"]
        assert entry["best"] <= entry["median"]
        assert len(entry["samples"]) == 1
        assert entry["size"] == BENCHMARKS["reachable"][2]
        # median/best are per-op: total elapsed divided by workload size.
        assert entry["median"] == entry["samples"][0] / entry["size"]
        assert entry["meta"]["queries"] > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmarks"):
            run_suite(quick=True, repeats=1, names=["nope"])

    def test_nonpositive_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_suite(quick=True, repeats=0)

    def test_every_benchmark_has_quick_and_full_sizes(self):
        for name, (fn, full_size, quick_size) in BENCHMARKS.items():
            assert 0 < quick_size < full_size, name


class TestLoadMedians:
    def test_repro_bench_format_prefers_best(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "benchmarks": {
                        "a": {"median": 2.0, "best": 1.5, "samples": [2.0, 1.5]},
                        "b": {"median": 3.0},
                    },
                }
            )
        )
        assert load_medians(str(path)) == {"a": 1.5, "b": 3.0}

    def test_pytest_benchmark_format(self, tmp_path):
        path = tmp_path / "pytest.json"
        path.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {"name": "x", "stats": {"median": 0.25}},
                    ]
                }
            )
        )
        assert load_medians(str(path)) == {"x": 0.25}


class TestCompareResults:
    def test_verdicts_and_regression_list(self):
        baseline = {"fast": 1.0, "slow": 1.0, "steady": 1.0, "gone": 1.0}
        current = {"fast": 0.5, "slow": 1.5, "steady": 1.05, "new": 9.9}
        lines, comparison = compare_results(baseline, current, threshold=0.10)
        assert comparison["_regressions"] == ["slow"]
        assert comparison["slow"]["regressed"] is True
        assert comparison["fast"]["regressed"] is False
        assert comparison["steady"]["regressed"] is False
        text = "\n".join(lines)
        assert "REGRESSION" in text
        assert "improved (50% faster)" in text
        assert "missing from current run" in text
        assert "new benchmark" in text

    def test_exactly_at_threshold_passes(self):
        _, comparison = compare_results({"a": 1.0}, {"a": 1.10}, threshold=0.10)
        assert comparison["_regressions"] == []


class TestTrajectoryNumbering:
    def test_first_free_slot(self, tmp_path):
        assert next_trajectory_path(str(tmp_path)).endswith("BENCH_1.json")
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_2.json").write_text("{}")
        assert next_trajectory_path(str(tmp_path)).endswith("BENCH_3.json")


class TestMainGate:
    def _write_baseline(self, path, benchmarks):
        path.write_text(
            json.dumps({"schema": BENCH_SCHEMA, "benchmarks": benchmarks})
        )

    def test_regression_fails_gate(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        # An absurdly fast baseline forces a REGRESSION verdict.
        self._write_baseline(
            baseline, {"reachable": {"median": 1e-9, "best": 1e-9}}
        )
        rc = main(
            [
                "reachable",
                "--quick",
                "--repeats",
                "1",
                "--baseline",
                str(baseline),
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
        # The trajectory artifact is still written on failure.
        artifact = json.loads((tmp_path / "BENCH_1.json").read_text())
        assert artifact["comparison"]["reachable"]["regressed"] is True

    def test_record_overwrites_baseline_and_passes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        self._write_baseline(
            baseline, {"reachable": {"median": 1e-9, "best": 1e-9}}
        )
        rc = main(
            [
                "reachable",
                "--quick",
                "--repeats",
                "1",
                "--baseline",
                str(baseline),
                "--record",
                "--no-artifact",
            ]
        )
        assert rc == 0
        recorded = json.loads(baseline.read_text())
        assert recorded["schema"] == BENCH_SCHEMA
        assert recorded["benchmarks"]["reachable"]["best"] > 0


class TestNewCells:
    def test_sweep_reduce_meta_proves_ipc_saving(self):
        document = run_suite(quick=True, repeats=1, names=["sweep_reduce"])
        meta = document["benchmarks"]["sweep_reduce"]["meta"]
        assert meta["observations"] > 0
        assert meta["bytes_reduced"] < meta["bytes_raw"]
        # The acceptance bar baked into the cell itself.
        assert meta["ipc_ratio"] >= 2.0

    def test_timer_elision_meta_counts_dead_pops(self):
        document = run_suite(quick=True, repeats=1, names=["timer_elision"])
        meta = document["benchmarks"]["timer_elision"]["meta"]
        assert meta["dead_pops"] == meta["races"] > 0

    def test_scheduler_churn_defaults_to_calendar(self):
        document = run_suite(quick=True, repeats=1, names=["scheduler_churn"])
        meta = document["benchmarks"]["scheduler_churn"]["meta"]
        assert meta["scheduler"] == "calendar"
        assert meta["events_fired"] > 0
        # Half the pops are dead guard entries (1:1 cancel-to-fire).
        assert meta["dead_pops"] > 0
        assert meta["events_fired"] + meta["dead_pops"] == meta["nominal_events"]

    def test_scheduler_churn_ab_flag(self, monkeypatch):
        import repro.experiments.bench as bench

        monkeypatch.setattr(bench, "BENCH_SCHEDULER", "heap")
        document = run_suite(quick=True, repeats=1, names=["scheduler_churn"])
        meta = document["benchmarks"]["scheduler_churn"]["meta"]
        assert meta["scheduler"] == "heap"

    def test_batched_fanout_meta(self):
        document = run_suite(quick=True, repeats=1, names=["batched_fanout"])
        meta = document["benchmarks"]["batched_fanout"]["meta"]
        # The shared bench network partitions two nodes off, so most
        # but not all of the fan-out lands.
        assert 0 < meta["delivered"] < meta["rounds"] * meta["fanout"]
        assert meta["delivered"] % meta["rounds"] == 0


class TestSchedulerCli:
    def test_list_prints_cells_and_coverage(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "benchmarks": {"reachable": {"median": 1.0, "best": 1.0}},
                }
            )
        )
        rc = main(["--list", "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        for name in BENCHMARKS:
            assert name in out
        assert "MISSING" in out  # every cell but reachable is uncovered
        assert "--record-missing" in out  # the record-on-missing hint

    def test_scheduler_flag_sets_and_restores_env(self, tmp_path, monkeypatch):
        import os

        from repro.experiments.bench import SCHEDULER_ENV_VAR

        monkeypatch.delenv(SCHEDULER_ENV_VAR, raising=False)
        rc = main(
            [
                "reachable",
                "--quick",
                "--repeats",
                "1",
                "--scheduler",
                "calendar",
                "--baseline",
                str(tmp_path / "missing.json"),
                "--record",
                "--out",
                str(tmp_path),
                "--no-artifact",
            ]
        )
        assert rc == 0
        assert SCHEDULER_ENV_VAR not in os.environ  # restored afterwards

    def test_record_missing_merges_without_touching_existing(
        self, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        existing = {"median": 123.0, "best": 123.0}
        baseline.write_text(
            json.dumps(
                {"schema": BENCH_SCHEMA, "benchmarks": {"reachable": existing}}
            )
        )
        rc = main(
            [
                "reachable",
                "scheduler_churn",
                "--quick",
                "--repeats",
                "1",
                "--retries",
                "0",
                "--baseline",
                str(baseline),
                "--record-missing",
                "--out",
                str(tmp_path),
                "--no-artifact",
            ]
        )
        # reachable regresses against the absurd 123 s baseline?  No —
        # 123 s is huge, so reachable passes easily; the run must merge
        # only the uncovered cell.
        assert rc == 0
        document = json.loads(baseline.read_text())
        assert document["benchmarks"]["reachable"] == existing
        assert "scheduler_churn" in document["benchmarks"]
        assert document["benchmarks"]["scheduler_churn"]["best"] > 0


class TestRetryGate:
    def test_flagged_regression_is_remeasured_then_fails(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "benchmarks": {"reachable": {"median": 1e-9, "best": 1e-9}},
                }
            )
        )
        rc = main(
            [
                "reachable",
                "--quick",
                "--repeats",
                "1",
                "--retries",
                "2",
                "--baseline",
                str(baseline),
                "--no-artifact",
            ]
        )
        out = capsys.readouterr().out
        # An impossible baseline cannot be cleared by re-measurement:
        # both retry passes run, then the gate still fails.
        assert rc == 1
        assert "retry 1/2" in out and "retry 2/2" in out

    def test_retries_zero_skips_remeasurement(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "benchmarks": {"reachable": {"median": 1e-9, "best": 1e-9}},
                }
            )
        )
        rc = main(
            [
                "reachable",
                "--quick",
                "--repeats",
                "1",
                "--retries",
                "0",
                "--baseline",
                str(baseline),
                "--no-artifact",
            ]
        )
        assert rc == 1
        assert "retry" not in capsys.readouterr().out


class TestSchedulerOverrideCoversRetries:
    """Pin the fix for the ``--scheduler`` leak: the override must hold
    through the regression re-measure retries and be restored on every
    exit path, including exceptions mid-measurement."""

    def test_retry_measurements_see_the_override(self, tmp_path, monkeypatch):
        import os

        from repro.experiments import bench
        from repro.experiments.bench import SCHEDULER_ENV_VAR

        monkeypatch.setattr(bench, "BENCH_SCHEDULER", None)
        monkeypatch.delenv(SCHEDULER_ENV_VAR, raising=False)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "benchmarks": {"reachable": {"median": 1e-9, "best": 1e-9}},
                }
            )
        )
        observed = []

        def fake_run_suite(quick, repeats, names=None):
            observed.append(
                (bench.BENCH_SCHEDULER, os.environ.get(SCHEDULER_ENV_VAR))
            )
            return {
                "schema": BENCH_SCHEMA,
                "quick": quick,
                "benchmarks": {
                    "reachable": {
                        "best": 1.0, "median": 1.0, "size": 1, "meta": {}
                    }
                },
            }

        monkeypatch.setattr(bench, "run_suite", fake_run_suite)
        rc = bench.main(
            [
                "reachable",
                "--quick",
                "--repeats",
                "1",
                "--retries",
                "2",
                "--scheduler",
                "heap",
                "--baseline",
                str(baseline),
                "--no-artifact",
            ]
        )
        assert rc == 1  # the impossible baseline still fails the gate
        # Initial suite + both retry passes: every measurement ran with
        # the override applied (previously retries ran after restore).
        assert observed == [("heap", "heap")] * 3
        assert bench.BENCH_SCHEDULER is None
        assert SCHEDULER_ENV_VAR not in os.environ

    def test_override_restores_on_exception(self, monkeypatch):
        import os

        from repro.experiments import bench
        from repro.experiments.bench import (
            SCHEDULER_ENV_VAR,
            _scheduler_override,
        )

        monkeypatch.setattr(bench, "BENCH_SCHEDULER", None)
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
        with pytest.raises(KeyboardInterrupt):
            with _scheduler_override("heap"):
                assert bench.BENCH_SCHEDULER == "heap"
                assert os.environ[SCHEDULER_ENV_VAR] == "heap"
                raise KeyboardInterrupt
        assert bench.BENCH_SCHEDULER is None
        assert os.environ[SCHEDULER_ENV_VAR] == "calendar"

    def test_no_override_is_a_noop(self, monkeypatch):
        import os

        from repro.experiments import bench
        from repro.experiments.bench import (
            SCHEDULER_ENV_VAR,
            _scheduler_override,
        )

        monkeypatch.setattr(bench, "BENCH_SCHEDULER", None)
        monkeypatch.delenv(SCHEDULER_ENV_VAR, raising=False)
        with _scheduler_override(None):
            assert bench.BENCH_SCHEDULER is None
            assert SCHEDULER_ENV_VAR not in os.environ


class TestParallelSimCell:
    def test_meta_reports_speedup_and_null_overhead(self):
        document = run_suite(
            quick=True, repeats=1, names=["cell_parallel_sim"]
        )
        entry = document["benchmarks"]["cell_parallel_sim"]
        assert entry["best"] > 0
        meta = entry["meta"]
        assert meta["regions"] == 4
        assert meta["mode"] in ("forked", "coupled-fallback")
        assert meta["speedup_vs_flat"] > 0
        assert meta["nulls_sent"] > 0
        assert 0 < meta["nulls_per_real_msg"] < 10
