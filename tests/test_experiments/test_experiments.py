"""Tests for the experiment runners and registry.

The analytic experiments are checked against the paper's printed
numbers; the simulation experiments are smoke-run at reduced size and
checked for the qualitative *shape* the paper reports.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments import (
    ablations,
    baselines,
    figure5,
    heterogeneous,
    latency,
    overhead,
    revocation,
    table1,
    table2,
    validation,
)
from repro.experiments.base import ExperimentResult, ascii_plot, format_table
from repro.experiments.table1 import PAPER_TABLE1
from repro.experiments.table2 import PAPER_TABLE2


class TestRegistry:
    def test_all_design_md_ids_present(self):
        expected = {
            "figure5", "table1", "table2", "sim_table1", "overhead",
            "latency", "revocation", "freeze_vs_quorum", "baselines",
            "heterogeneous", "weighted_quorums", "mobility",
            "cache_extensions", "byzantine", "caching", "sharded",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_run_experiment_dispatches(self):
        result = run_experiment("table1")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "table1"


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "long-header"], [[1, 2.5], [33, 0.1]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_format_empty_table(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_format_short_row_raises_value_error(self):
        # Regression: a short row used to escape as IndexError from the
        # width computation; it must be a clear ValueError instead.
        with pytest.raises(ValueError, match="row 1 has 1 cells, expected 2"):
            format_table(["a", "b"], [[1, 2], [3]])

    def test_format_long_row_raises_value_error(self):
        with pytest.raises(ValueError, match="row 0 has 3 cells, expected 2"):
            format_table(["a", "b"], [[1, 2, 3]])

    def test_ascii_plot_renders(self):
        plot = ascii_plot({"PA": [0.1, 0.9], "PS": [0.9, 0.1]}, [1, 2])
        assert "PA" in plot and "PS" in plot

    def test_result_render_and_dicts(self):
        result = table1.run()
        rendered = result.render()
        assert "table1" in rendered
        dicts = result.as_dicts()
        assert dicts[0]["C"] == 1


class TestTable1Experiment:
    def test_reproduces_paper_exactly(self):
        rows = {row["C"]: row for row in table1.run().as_dicts()}
        for c, (pa1, ps1, pa2, ps2) in PAPER_TABLE1.items():
            assert round(rows[c]["PA(C) Pi=0.1"], 5) == pa1
            assert round(rows[c]["PS(C) Pi=0.1"], 5) == ps1
            assert round(rows[c]["PA(C) Pi=0.2"], 5) == pa2
            assert round(rows[c]["PS(C) Pi=0.2"], 5) == ps2


class TestTable2Experiment:
    def test_reproduces_paper_exactly(self):
        result = table2.run()
        for row in result.as_dicts():
            key = (row["M"], row["C"])
            pa1, ps1, pa2, ps2 = PAPER_TABLE2[key]
            assert round(row["PA(C) Pi=0.1"], 5) == pa1
            assert round(row["PS(C) Pi=0.1"], 5) == ps1
            assert round(row["PA(C) Pi=0.2"], 5) == pa2
            assert round(row["PS(C) Pi=0.2"], 5) == ps2

    def test_has_ten_rows_like_the_paper(self):
        assert len(table2.run().rows) == 10


class TestFigure5Experiment:
    def test_full_curve(self):
        result = figure5.run(m=10, pi=0.1)
        assert len(result.rows) == 10
        assert result.extra_text  # the plot

    def test_best_c_noted(self):
        assert "C=5" in figure5.run(m=10, pi=0.1).notes


class TestValidationExperiment:
    def test_analytic_within_simulated_ci(self):
        result = validation.run(
            m=10, cs=(1, 5, 10), pis=(0.1,), trials=250, seed=0
        )
        eps = 1e-9
        for row in result.as_dicts():
            assert (row["PA ci-low"] - eps <= row["PA analytic"]
                    <= row["PA ci-high"] + eps)
            assert (row["PS ci-low"] - eps <= row["PS analytic"]
                    <= row["PS ci-high"] + eps)
        assert "all fall inside" in result.notes


class TestOverheadExperiment:
    def test_measured_tracks_c_over_te(self):
        result = overhead.run(cs=(1, 2), tes=(30.0,), seed=0)
        rows = result.as_dicts()
        for row in rows:
            assert row["ratio"] == pytest.approx(1.0, abs=0.15)
        # Doubling C doubles the measured rate.
        by_c = {row["C"]: row["measured msg/s"] for row in rows}
        assert by_c[2] == pytest.approx(2 * by_c[1], rel=0.15)

    def test_te_scaling(self):
        result = overhead.run(cs=(1,), tes=(30.0, 60.0), seed=0)
        by_te = {row["Te"]: row["measured msg/s"] for row in result.as_dicts()}
        assert by_te[30.0] == pytest.approx(2 * by_te[60.0], rel=0.15)


class TestLatencyExperiment:
    def test_predictions_match_measurements(self):
        result = latency.run(seed=0)
        for row in result.as_dicts():
            assert row["measured s"] == pytest.approx(
                row["predicted s"], abs=0.02
            ), row


class TestRevocationExperiment:
    def test_bound_never_violated(self):
        result = revocation.run(te_bound=30.0, clock_bound=1.1)
        for row in result.as_dicts():
            assert row["bound"] == "OK"
            assert row["last allow after revoke (s)"] < 30.0


class TestAblationExperiment:
    def test_freeze_collapses_quorum_does_not(self):
        result = ablations.run(seed=0)
        cells = {
            (row["strategy"], row["phase"]): row["availability"]
            for row in result.as_dicts()
        }
        assert cells[("quorum (C=2)", "during")] == pytest.approx(1.0)
        assert cells[("freeze (Ti=30)", "during")] == pytest.approx(0.0)
        assert cells[("freeze (Ti=30)", "after")] == pytest.approx(1.0)


class TestBaselinesExperiment:
    def test_paper_protocol_has_zero_violations(self):
        result = baselines.run(seed=0, duration=600.0)
        rows = {row["system"]: row for row in result.as_dicts()}
        assert rows["paper (cached quorum)"]["Te VIOLATIONS"] == 0
        # Local-only pays in availability.
        assert (
            rows["local only"]["availability"]
            < rows["paper (cached quorum)"]["availability"]
        )


class TestHeterogeneousExperiment:
    def test_flaky_weighting_reduces_security(self):
        result = heterogeneous.run(samples=4000, seed=0)
        rows = {
            (row["quantity"], row["site / C"], row["model"]): row["probability"]
            for row in result.as_dicts()
        }
        uniform = rows[("security", "system", "uniform weights")]
        weighted = rows[("security", "system", "flaky issues 80%")]
        assert weighted < uniform

    def test_correlation_reduces_availability_at_mid_c(self):
        result = heterogeneous.run(samples=4000, seed=0)
        rows = {
            (row["quantity"], row["site / C"], row["model"]): row["probability"]
            for row in result.as_dicts()
        }
        assert (
            rows[("availability", "C=4", "correlated (MC)")]
            < rows[("availability", "C=4", "independent approx")]
        )


class TestWeightedQuorumsExperiment:
    def test_weighted_beats_counts_and_removal(self):
        result = run_experiment("weighted_quorums")
        rows = {row["scheme"]: row["min(PA, PS)"] for row in result.as_dicts()}
        assert rows["optimal weights <= 3"] >= rows["unit weights (paper)"]
        assert rows["remove flaky (M-1)"] < rows["unit weights (paper)"]


class TestMobilityExperiment:
    def test_policy_ordering(self):
        result = run_experiment("mobility", fractions=(0.1, 0.5), seed=0)
        cells = {
            (row["policy"], row["disconnected fraction"]): row["availability"]
            for row in result.as_dicts()
        }
        assert cells[("default-allow (Te=30)", 0.5)] == 1.0
        assert (
            cells[("long cache (Te=300)", 0.5)]
            > cells[("strict (Te=30)", 0.5)]
        )


class TestCacheExtensionsExperiment:
    def test_shapes(self):
        result = run_experiment("cache_extensions", seed=0)
        rows = {
            (row["extension"], row["state"]): row for row in result.as_dicts()
        }
        on_p99 = float(rows[("refresh-ahead", "on")]["metric 2"].split()[1])
        off_p99 = float(rows[("refresh-ahead", "off")]["metric 2"].split()[1])
        assert on_p99 < off_p99
        on_q = int(rows[("deny-cache", "on")]["traffic"].split()[0])
        off_q = int(rows[("deny-cache", "off")]["traffic"].split()[0])
        assert on_q < off_q


class TestByzantineExperiment:
    def test_attack_and_defence(self):
        result = run_experiment("byzantine", trials=20, seed=0)
        rows = {row["configuration"]: row for row in result.as_dicts()}
        assert (
            rows["crash-only combine, 1 liar"]["fabricated grants accepted"]
            == 1.0
        )
        assert (
            rows["f=1 vouching, 1 liar"]["fabricated grants accepted"] == 0.0
        )


class TestCachingExperiment:
    def test_cache_buys_queries_and_latency(self):
        result = run_experiment("caching", seed=0)
        rows = {row["configuration"]: row for row in result.as_dicts()}
        assert (
            rows["caching on (Te=300)"]["queries / access"]
            < rows["caching off (te ~ 0)"]["queries / access"]
        )


class TestJobsInvariance:
    """Migrated in-worker-reduce runners: ``jobs=N`` must render
    byte-identically to the sequential fold for every experiment that
    grew a ``reduce=`` path."""

    @pytest.mark.parametrize(
        "module, kwargs",
        [
            (figure5, dict(m=4, pi=0.1)),
            (table1, dict(m=4, pis=(0.1,))),
            (table2, dict(pis=(0.1,))),
            (ablations, dict(seed=0)),
        ],
        ids=["figure5", "table1", "table2", "ablations"],
    )
    def test_render_identical_across_jobs(self, module, kwargs):
        sequential = module.run(**kwargs, jobs=1)
        pooled = module.run(**kwargs, jobs=4)
        assert pooled.render() == sequential.render()

    def test_weighted_argmax_reduce_identical_across_jobs(self):
        from repro.experiments import weighted

        sequential = weighted.run(m=4, jobs=1)
        pooled = weighted.run(m=4, jobs=4)
        assert pooled.render() == sequential.render()


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out

    def test_unknown_id_fails(self, capsys):
        from repro.experiments.cli import main

        assert main(["bogus"]) == 2

    def test_runs_selected_experiment(self, capsys):
        from repro.experiments.cli import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "0.38742" in out

    def test_jobs_flag_accepted_and_output_identical(self, capsys):
        from repro.experiments.cli import main

        # An analytic experiment ignores --jobs; a simulated one fans
        # out — both must succeed and print the same rows as jobs=1.
        assert main(["table1", "--jobs", "2"]) == 0
        capsys.readouterr()
        assert main(["revocation", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert main(["revocation", "--jobs", "1"]) == 0
        sequential_out = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines() if "completed in" not in line
        ]
        assert strip(parallel_out) == strip(sequential_out)


class TestShardedExperiment:
    def test_per_shard_curves_match_flat_analysis(self):
        from repro.experiments import sharded

        result = sharded.run(m=3, shards=2, cs=(1, 2), trials=150, seed=0)
        assert result.experiment_id == "sharded"
        assert len(result.rows) == 2 * 2  # |cs| x shards
        # The acceptance gate: every shard's Wilson interval contains
        # the flat analytic availability.
        assert "contains the flat analytic curve" in result.notes
        for c, shard, pa_true, pa_hat, lo, hi in result.rows:
            assert lo - 1e-9 <= pa_true <= hi + 1e-9

    def test_app_for_shard_is_deterministic_and_correct(self):
        from repro.experiments.sharded import app_for_shard
        from repro.protocols.sharding import ShardRouter

        groups = [tuple(f"s{g}m{i}" for i in range(3)) for g in range(4)]
        router = ShardRouter(groups)
        for shard in range(4):
            app = app_for_shard(4, 3, shard)
            assert router.shard_of(app) == shard
            assert app_for_shard(4, 3, shard) == app
