"""The paper's printed numbers, verbatim.

These are the reproduction's ground truth: every value of Table 1 and
Table 2 must come out of our formulas exactly as printed (five decimal
places), and the Figure 5 qualitative claims must hold.
"""

from __future__ import annotations

import pytest

from repro.analysis.quorum_math import availability, best_check_quorum, security
from repro.experiments.table1 import PAPER_TABLE1
from repro.experiments.table2 import PAPER_TABLE2


class TestTable1:
    @pytest.mark.parametrize("c", list(range(1, 11)))
    def test_row_matches_paper(self, c):
        pa1, ps1, pa2, ps2 = PAPER_TABLE1[c]
        assert round(availability(10, c, 0.1), 5) == pytest.approx(pa1, abs=1e-9)
        assert round(security(10, c, 0.1), 5) == pytest.approx(ps1, abs=1e-9)
        assert round(availability(10, c, 0.2), 5) == pytest.approx(pa2, abs=1e-9)
        assert round(security(10, c, 0.2), 5) == pytest.approx(ps2, abs=1e-9)


class TestTable2:
    @pytest.mark.parametrize("m,c", sorted(PAPER_TABLE2))
    def test_row_matches_paper(self, m, c):
        pa1, ps1, pa2, ps2 = PAPER_TABLE2[(m, c)]
        assert round(availability(m, c, 0.1), 5) == pytest.approx(pa1, abs=1e-9)
        assert round(security(m, c, 0.1), 5) == pytest.approx(ps1, abs=1e-9)
        assert round(availability(m, c, 0.2), 5) == pytest.approx(pa2, abs=1e-9)
        assert round(security(m, c, 0.2), 5) == pytest.approx(ps2, abs=1e-9)

    def test_fixed_c_half_trades_security_for_availability(self):
        """Upper half of Table 2: at fixed C=2, growing M helps PA and
        hurts PS."""
        ms = [4, 6, 8, 10, 12]
        pas = [availability(m, 2, 0.2) for m in ms]
        pss = [security(m, 2, 0.2) for m in ms]
        assert all(a <= b + 1e-12 for a, b in zip(pas, pas[1:]))
        assert all(a >= b - 1e-12 for a, b in zip(pss, pss[1:]))

    def test_scaled_c_half_improves_both(self):
        """Lower half of Table 2: scaling C with M improves both."""
        pairs = [(4, 2), (6, 3), (8, 4), (10, 5), (12, 6)]
        pas = [availability(m, c, 0.2) for m, c in pairs]
        pss = [security(m, c, 0.2) for m, c in pairs]
        assert all(a <= b + 1e-12 for a, b in zip(pas, pas[1:]))
        assert all(a <= b + 1e-12 for a, b in zip(pss, pss[1:]))


class TestFigure5Claims:
    def test_low_security_at_c_one(self):
        assert security(10, 1, 0.1) < 0.4

    def test_low_availability_at_c_m(self):
        assert availability(10, 10, 0.1) < 0.4

    def test_wide_sweet_spot_around_m_over_2(self):
        """"There is a relatively large range of values of C around M/2
        where both availability and security are very close to 1."""
        sweet = [
            c
            for c in range(1, 11)
            if availability(10, c, 0.1) > 0.98 and security(10, c, 0.1) > 0.98
        ]
        assert len(sweet) >= 4
        assert 5 in sweet

    def test_best_c_for_paper_setting(self):
        assert best_check_quorum(10, 0.1).c == 5
