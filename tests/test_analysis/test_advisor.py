"""Tests for the policy advisor."""

from __future__ import annotations

import pytest

from repro.analysis.advisor import (
    InfeasibleTargets,
    Recommendation,
    recommend_policy,
)
from repro.analysis.quorum_math import availability, security


class TestRecommendPolicy:
    def test_paper_setting_picks_middle_c(self):
        rec = recommend_policy(10, 0.1, min_availability=0.999,
                               min_security=0.99)
        assert rec.policy.check_quorum in (4, 5)
        assert rec.predicted_availability >= 0.999
        assert rec.predicted_security >= 0.99

    def test_feasible_set_is_contiguous_and_correct(self):
        rec = recommend_policy(10, 0.1, min_availability=0.98,
                               min_security=0.94)
        for c in rec.feasible_quorums:
            assert availability(10, c, 0.1) >= 0.98
            assert security(10, c, 0.1) >= 0.94
        lo, hi = min(rec.feasible_quorums), max(rec.feasible_quorums)
        assert rec.feasible_quorums == list(range(lo, hi + 1))

    def test_preferences_order_choices(self):
        kwargs = dict(min_availability=0.97, min_security=0.9)
        low = recommend_policy(10, 0.1, prefer="availability", **kwargs)
        high = recommend_policy(10, 0.1, prefer="security", **kwargs)
        cheap = recommend_policy(10, 0.1, prefer="cheap", **kwargs)
        balanced = recommend_policy(10, 0.1, prefer="balanced", **kwargs)
        assert low.policy.check_quorum <= balanced.policy.check_quorum
        assert balanced.policy.check_quorum <= high.policy.check_quorum
        assert cheap.policy.check_quorum == low.policy.check_quorum
        assert cheap.predicted_message_rate <= high.predicted_message_rate

    def test_infeasible_suggests_bigger_m(self):
        with pytest.raises(InfeasibleTargets) as excinfo:
            recommend_policy(3, 0.2, min_availability=0.999,
                             min_security=0.999)
        assert excinfo.value.suggested_m is not None
        suggested = excinfo.value.suggested_m
        rec = recommend_policy(suggested, 0.2, min_availability=0.999,
                               min_security=0.999)
        assert isinstance(rec, Recommendation)

    def test_truly_impossible_reports_none(self):
        with pytest.raises(InfeasibleTargets) as excinfo:
            recommend_policy(3, 0.49, min_availability=0.9999999,
                             min_security=0.9999999, max_suggested_m=5)
        assert excinfo.value.suggested_m is None

    def test_overrides_flow_into_policy(self):
        rec = recommend_policy(10, 0.1, min_availability=0.9,
                               min_security=0.9, query_timeout=7.0)
        assert rec.policy.query_timeout == 7.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            recommend_policy(10, 0.1, prefer="vibes")
        with pytest.raises(ValueError):
            recommend_policy(10, 0.1, min_availability=0.0)

    def test_recommended_policy_is_usable(self):
        from repro.core.system import AccessControlSystem

        rec = recommend_policy(5, 0.1, min_availability=0.98,
                               min_security=0.9)
        system = AccessControlSystem(n_managers=5, n_hosts=1,
                                     policy=rec.policy, seed=1)
        system.seed_grant("app", "u")
        process = system.hosts[0].request_access("app", "u")
        system.run(until=10)
        assert process.value.allowed
