"""Tests for the weighted-voting quorum extension."""

from __future__ import annotations

import pytest

from repro.analysis.quorum_math import availability, binomial_tail, security
from repro.analysis.weighted import (
    WeightedQuorumSystem,
    best_thresholds,
    best_unit_counts,
    weight_tail,
)


class TestWeightTail:
    def test_reduces_to_binomial_for_unit_weights(self):
        for threshold in range(7):
            assert weight_tail([1] * 5, [0.8] * 5, threshold) == pytest.approx(
                binomial_tail(5, threshold, 0.8)
            )

    def test_threshold_zero_is_certain(self):
        assert weight_tail([2, 3], [0.1, 0.1], 0) == 1.0

    def test_threshold_above_total_impossible(self):
        assert weight_tail([2, 3], [0.9, 0.9], 6) == 0.0

    def test_two_managers_by_hand(self):
        # P[weight >= 3] with weights (2, 3), probs (0.5, 0.4):
        # only reachable via the 3-vote manager: 0.4.
        assert weight_tail([2, 3], [0.5, 0.4], 3) == pytest.approx(0.4)
        # P[weight >= 5] needs both: 0.2.
        assert weight_tail([2, 3], [0.5, 0.4], 5) == pytest.approx(0.2)

    def test_zero_weight_manager_is_irrelevant(self):
        with_zero = weight_tail([0, 1, 1], [0.1, 0.8, 0.8], 2)
        without = weight_tail([1, 1], [0.8, 0.8], 2)
        assert with_zero == pytest.approx(without)

    def test_monotone_in_threshold(self):
        values = [weight_tail([1, 2, 3], [0.7, 0.6, 0.5], t) for t in range(8)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            weight_tail([1], [0.5, 0.5], 1)
        with pytest.raises(ValueError):
            weight_tail([-1], [0.5], 1)
        with pytest.raises(ValueError):
            weight_tail([1], [1.5], 1)


class TestWeightedQuorumSystem:
    def unit_system(self, m=5, c=3):
        return WeightedQuorumSystem(
            weights={f"m{i}": 1 for i in range(m)},
            check_threshold=c,
            update_threshold=m - c + 1,
        )

    def test_unit_weights_reproduce_paper_formulas(self):
        m, c, pi = 5, 3, 0.1
        system = self.unit_system(m, c)
        inaccessibility = {f"m{i}": pi for i in range(m)}
        assert system.availability(inaccessibility) == pytest.approx(
            availability(m, c, pi)
        )
        others = {f"m{i}": pi for i in range(1, m)}
        assert system.security("m0", others) == pytest.approx(security(m, c, pi))

    def test_intersection_enforced(self):
        with pytest.raises(ValueError):
            WeightedQuorumSystem(
                weights={"a": 1, "b": 1}, check_threshold=1, update_threshold=1
            )

    def test_threshold_bounds_enforced(self):
        with pytest.raises(ValueError):
            WeightedQuorumSystem(
                weights={"a": 1}, check_threshold=0, update_threshold=2
            )
        with pytest.raises(ValueError):
            WeightedQuorumSystem(
                weights={"a": 1, "b": 2}, check_threshold=4, update_threshold=1
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WeightedQuorumSystem(weights={}, check_threshold=1, update_threshold=1)

    def test_unknown_origin_rejected(self):
        system = self.unit_system()
        with pytest.raises(KeyError):
            system.security("ghost", {})

    def test_origin_weight_counts_toward_update(self):
        """An origin holding the entire update threshold needs nobody."""
        system = WeightedQuorumSystem(
            weights={"big": 3, "small": 1},
            check_threshold=3,
            update_threshold=2,
        )
        assert system.security("big", {"small": 0.99}) == 1.0


class TestOptimisers:
    def setting(self):
        managers = [f"m{i}" for i in range(4)]
        host_pi = {m: 0.1 for m in managers}
        manager_pi = {
            origin: {o: 0.1 for o in managers if o != origin}
            for origin in managers
        }
        return managers, host_pi, manager_pi

    def test_best_unit_counts_picks_balanced_c(self):
        managers, host_pi, manager_pi = self.setting()
        system = best_unit_counts(managers, host_pi, manager_pi)
        assert all(w == 1 for w in system.weights.values())
        assert system.check_threshold in (2, 3)  # around M/2

    def test_best_thresholds_intersect(self):
        managers, host_pi, manager_pi = self.setting()
        weights = {m: 2 for m in managers}
        system = best_thresholds(weights, host_pi, manager_pi)
        assert system.check_threshold + system.update_threshold == (
            system.total_weight + 1
        )

    def test_weighting_never_hurts_when_searched(self):
        """The exhaustive weighted optimum is at least as good as the
        best unit-weight configuration (units are in the search space)."""
        from repro.experiments.weighted import build_setting

        managers, _flaky, host_pi, manager_pi = build_setting(4, 0.1, 0.4)
        unit = best_unit_counts(managers, host_pi, manager_pi)
        unit_value = unit.worst(host_pi, manager_pi)
        from itertools import product

        best_value = -1.0
        for candidate in product((1, 2), repeat=4):
            system = best_thresholds(
                dict(zip(managers, candidate)), host_pi, manager_pi
            )
            best_value = max(best_value, system.worst(host_pi, manager_pi))
        assert best_value >= unit_value - 1e-12
