"""Tests for heterogeneous and correlated inaccessibility analysis."""

from __future__ import annotations

import random

import pytest

from repro.analysis.heterogeneous import (
    CorrelatedInaccessibility,
    PairwiseInaccessibility,
    poisson_binomial_tail,
    weighted_average,
)
from repro.analysis.quorum_math import availability, binomial_tail, security


class TestPoissonBinomial:
    def test_equals_binomial_when_uniform(self):
        probs = [0.7] * 8
        for k in range(10):
            assert poisson_binomial_tail(probs, k) == pytest.approx(
                binomial_tail(8, k, 0.7)
            )

    def test_k_zero(self):
        assert poisson_binomial_tail([0.1, 0.2], 0) == 1.0

    def test_k_above_n(self):
        assert poisson_binomial_tail([0.9], 2) == 0.0

    def test_two_heterogeneous_trials(self):
        # P[at least 1 of {0.5, 0.2}] = 1 - 0.5*0.8 = 0.6
        assert poisson_binomial_tail([0.5, 0.2], 1) == pytest.approx(0.6)
        # P[both] = 0.1
        assert poisson_binomial_tail([0.5, 0.2], 2) == pytest.approx(0.1)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            poisson_binomial_tail([1.5], 1)


class TestWeightedAverage:
    def test_uniform_default(self):
        assert weighted_average({"a": 0.2, "b": 0.8}) == pytest.approx(0.5)

    def test_weights_applied(self):
        assert weighted_average(
            {"a": 0.0, "b": 1.0}, {"a": 1.0, "b": 3.0}
        ) == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_average({})

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_average({"a": 1.0}, {"a": 0.0})


class TestPairwiseModel:
    def test_uniform_model_reproduces_paper_formulas(self):
        """The homogeneous special case must agree with Table 1."""
        model = PairwiseInaccessibility.uniform(m=10, n_hosts=2, pi=0.1)
        for c in (1, 4, 7, 10):
            assert model.host_availability("h0", c) == pytest.approx(
                availability(10, c, 0.1)
            )
            assert model.manager_security("m0", c) == pytest.approx(
                security(10, c, 0.1)
            )

    def test_system_aggregates_match_uniform(self):
        model = PairwiseInaccessibility.uniform(m=6, n_hosts=3, pi=0.2)
        assert model.system_availability(3) == pytest.approx(availability(6, 3, 0.2))
        assert model.system_security(3) == pytest.approx(security(6, 3, 0.2))

    def test_flaky_manager_hurts_when_it_issues_updates(self):
        """Section 4.1's warning, quantitatively."""
        managers = ["m0", "m1", "m2", "m3"]
        pi = {
            a: {b: (0.5 if "m3" in (a, b) else 0.05) for b in managers if b != a}
            for a in managers
        }
        model = PairwiseInaccessibility(
            managers=managers,
            host_to_manager={"h0": {m: 0.05 for m in managers}},
            manager_to_manager=pi,
        )
        uniform = model.system_security(2)
        flaky_heavy = model.system_security(
            2, update_frequency={"m0": 0.05, "m1": 0.05, "m2": 0.05, "m3": 0.85}
        )
        assert flaky_heavy < uniform

    def test_unreliable_host_link_lowers_its_availability(self):
        managers = ["m0", "m1", "m2"]
        model = PairwiseInaccessibility(
            managers=managers,
            host_to_manager={
                "good": {m: 0.05 for m in managers},
                "bad": {m: 0.4 for m in managers},
            },
            manager_to_manager={
                a: {b: 0.05 for b in managers if b != a} for a in managers
            },
        )
        assert model.host_availability("bad", 2) < model.host_availability("good", 2)


class TestCorrelatedModel:
    def model(self):
        managers = ["m0", "m1", "m2", "m3"]
        return CorrelatedInaccessibility(
            managers=managers,
            private_pi={m: 0.05 for m in managers},
            groups={"m0": "link", "m1": "link", "m2": "direct", "m3": "direct"},
            shared_pi={"link": 0.3, "direct": 0.0},
        )

    def test_marginals_combine_private_and_shared(self):
        model = self.model()
        assert model.marginal_pi("m0") == pytest.approx(1 - 0.95 * 0.7)
        assert model.marginal_pi("m2") == pytest.approx(0.05)

    def test_monte_carlo_availability_close_to_exact_for_c1(self):
        """For C=1 the exact value is tractable: unavailable only if
        all four are down."""
        model = self.model()
        # P[all down] = P[link event] * 0.05^2 (m2,m3 private)
        #   + P[no link event] * 0.05^4
        exact_down = 0.3 * (0.05**2) + 0.7 * (0.05**4)
        estimate = model.availability(1, random.Random(0), samples=60_000)
        assert estimate == pytest.approx(1 - exact_down, abs=0.01)

    def test_correlation_hurts_vs_independent_at_mid_c(self):
        model = self.model()
        rng = random.Random(1)
        mc = model.availability(3, rng, samples=40_000)
        independent = poisson_binomial_tail(
            [1 - model.marginal_pi(m) for m in model.managers], 3
        )
        assert mc < independent

    def test_security_estimate_in_range(self):
        model = self.model()
        value = model.security("m2", 2, random.Random(2), samples=5_000)
        assert 0.0 <= value <= 1.0
