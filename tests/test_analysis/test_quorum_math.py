"""Tests for the PA/PS binomial analysis."""

from __future__ import annotations

import math

import pytest

from repro.analysis.quorum_math import (
    availability,
    best_check_quorum,
    binomial_tail,
    quorum_curve,
    security,
    smallest_balanced_m,
)


class TestBinomialTail:
    def test_k_zero_is_one(self):
        assert binomial_tail(10, 0, 0.3) == 1.0
        assert binomial_tail(10, -2, 0.3) == 1.0

    def test_k_above_n_is_zero(self):
        assert binomial_tail(5, 6, 0.9) == 0.0

    def test_certain_success(self):
        assert binomial_tail(5, 5, 1.0) == 1.0

    def test_certain_failure(self):
        assert binomial_tail(5, 1, 0.0) == 0.0

    def test_single_trial(self):
        assert binomial_tail(1, 1, 0.25) == pytest.approx(0.25)

    def test_complement_of_pmf_sum(self):
        n, k, p = 12, 7, 0.37
        pmf_below = sum(
            math.comb(n, j) * p**j * (1 - p) ** (n - j) for j in range(k)
        )
        assert binomial_tail(n, k, p) == pytest.approx(1.0 - pmf_below)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            binomial_tail(-1, 0, 0.5)
        with pytest.raises(ValueError):
            binomial_tail(5, 1, 1.5)


class TestFormulas:
    def test_availability_matches_definition(self):
        # P[at least C of M managers accessible], accessibility 1-Pi.
        assert availability(10, 4, 0.2) == pytest.approx(
            binomial_tail(10, 4, 0.8)
        )

    def test_security_counts_origin_in_quorum(self):
        # Origin needs M-C of the other M-1.
        assert security(10, 4, 0.2) == pytest.approx(binomial_tail(9, 6, 0.8))

    def test_pi_zero_is_perfect(self):
        for c in range(1, 6):
            assert availability(5, c, 0.0) == 1.0
            assert security(5, c, 0.0) == 1.0

    def test_single_manager(self):
        assert availability(1, 1, 0.3) == pytest.approx(0.7)
        assert security(1, 1, 0.3) == 1.0  # update quorum is just itself

    def test_c_equals_m_security_perfect(self):
        # Update quorum of 1: the origin alone suffices.
        assert security(8, 8, 0.5) == 1.0

    def test_c_equals_one_availability_near_one(self):
        assert availability(8, 1, 0.2) == pytest.approx(1.0 - 0.2**8)

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError):
            availability(5, 0, 0.1)
        with pytest.raises(ValueError):
            availability(5, 6, 0.1)
        with pytest.raises(ValueError):
            security(5, 6, 0.1)


class TestMonotonicity:
    def test_availability_decreases_in_c(self):
        values = [availability(10, c, 0.2) for c in range(1, 11)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_security_increases_in_c(self):
        values = [security(10, c, 0.2) for c in range(1, 11)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_availability_decreases_in_pi(self):
        values = [availability(10, 5, pi) for pi in (0.0, 0.1, 0.2, 0.4)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


class TestCurveHelpers:
    def test_curve_covers_all_c(self):
        points = quorum_curve(6, 0.1)
        assert [p.c for p in points] == list(range(1, 7))

    def test_best_check_quorum_near_m_over_2(self):
        """The paper: both metrics near 1 for C around M/2."""
        for m in (6, 8, 10, 12):
            best = best_check_quorum(m, 0.1)
            assert abs(best.c - m / 2) <= 2
            assert best.worst > 0.98

    def test_worst_is_min(self):
        point = quorum_curve(10, 0.1)[0]
        assert point.worst == min(point.availability, point.security)

    def test_smallest_balanced_m_monotone_need(self):
        modest = smallest_balanced_m(0.1, 0.99)
        strict = smallest_balanced_m(0.1, 0.9999)
        assert modest is not None and strict is not None
        assert strict.m >= modest.m
        assert strict.worst >= 0.9999

    def test_smallest_balanced_m_unreachable_returns_none(self):
        assert smallest_balanced_m(0.45, 0.999999999, max_m=4) is None

    def test_smallest_balanced_m_invalid_target(self):
        with pytest.raises(ValueError):
            smallest_balanced_m(0.1, 0.0)


class TestAvailabilityWithRetries:
    def test_r1_equals_base(self):
        from repro.analysis.quorum_math import availability_with_retries

        assert availability_with_retries(10, 5, 0.2, 1) == pytest.approx(
            availability(10, 5, 0.2)
        )

    def test_monotone_in_r(self):
        from repro.analysis.quorum_math import availability_with_retries

        values = [availability_with_retries(10, 8, 0.2, r) for r in (1, 2, 4, 8)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_matches_independent_rounds_formula(self):
        from repro.analysis.quorum_math import availability_with_retries

        base = availability(5, 4, 0.3)
        assert availability_with_retries(5, 4, 0.3, 3) == pytest.approx(
            1 - (1 - base) ** 3
        )

    def test_invalid_r(self):
        from repro.analysis.quorum_math import availability_with_retries

        with pytest.raises(ValueError):
            availability_with_retries(5, 3, 0.1, 0)
