"""Tests for the O(C/Te) / O(C) / O(R) cost model."""

from __future__ import annotations

import pytest

from repro.analysis.costs import (
    CostModel,
    miss_delay,
    steady_state_check_rate,
    steady_state_message_rate,
    worst_case_delay,
)
from repro.core.policy import AccessPolicy, QueryStrategy


class TestRates:
    def test_check_rate_is_inverse_te(self):
        assert steady_state_check_rate(50.0) == pytest.approx(0.02)

    def test_message_rate_scales_with_c(self):
        assert steady_state_message_rate(4, 100.0) == pytest.approx(
            2 * steady_state_message_rate(2, 100.0)
        )

    def test_message_rate_inverse_in_te(self):
        assert steady_state_message_rate(2, 50.0) == pytest.approx(
            2 * steady_state_message_rate(2, 100.0)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            steady_state_check_rate(0.0)
        with pytest.raises(ValueError):
            steady_state_message_rate(0, 10.0)


class TestMissDelay:
    def test_parallel_constant_in_c(self):
        rtt = 0.1
        delays = [
            miss_delay(
                AccessPolicy(check_quorum=c, query_strategy=QueryStrategy.PARALLEL),
                rtt,
            )
            for c in (1, 3, 5)
        ]
        assert delays == [rtt] * 3

    def test_sequential_linear_in_c(self):
        rtt = 0.1
        policy = AccessPolicy(check_quorum=4, query_strategy=QueryStrategy.SEQUENTIAL)
        assert miss_delay(policy, rtt) == pytest.approx(0.4)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            miss_delay(AccessPolicy(), -1.0)


class TestWorstCaseDelay:
    def test_infinite_for_unbounded_r(self):
        assert worst_case_delay(AccessPolicy(max_attempts=None)) == float("inf")

    def test_linear_in_r(self):
        def delay(r):
            return worst_case_delay(
                AccessPolicy(
                    max_attempts=r, query_timeout=1.0, retry_backoff=0.5,
                    query_strategy=QueryStrategy.PARALLEL,
                )
            )

        assert delay(1) == pytest.approx(1.0)
        assert delay(2) == pytest.approx(2.5)
        assert delay(4) == pytest.approx(5.5)

    def test_sequential_multiplies_by_c(self):
        policy = AccessPolicy(
            check_quorum=3, max_attempts=1, query_timeout=1.0,
            query_strategy=QueryStrategy.SEQUENTIAL,
        )
        assert worst_case_delay(policy) == pytest.approx(3.0)


class TestCostModel:
    def test_bundles_everything(self):
        policy = AccessPolicy(
            check_quorum=2, expiry_bound=100.0, clock_bound=1.0,
            max_attempts=2, query_timeout=1.0, retry_backoff=0.0,
        )
        model = CostModel(policy=policy, round_trip=0.1)
        assert model.check_rate == pytest.approx(0.01)
        assert model.message_rate == pytest.approx(0.02)
        assert model.cache_miss_delay == pytest.approx(0.1)
        assert model.unreachable_delay == pytest.approx(2.0)
