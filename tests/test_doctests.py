"""Docstring examples must actually run.

A curated set of modules whose module-level docstrings contain
executable examples; drift between docs and behaviour fails here.
"""

from __future__ import annotations

import doctest

import pytest

import repro.analysis.advisor
import repro.sim.clock
import repro.sim.engine
import repro.sim.rng

MODULES = [
    repro.sim.engine,
    repro.sim.clock,
    repro.sim.rng,
    repro.analysis.advisor,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
